//! Search checkpoint/resume: level-granularity BFS snapshots in pcb-json.
//!
//! A level-synchronous BFS is fully described between levels by its
//! seen-set, its frontier, and the running maximum — so that is exactly
//! what `save` serializes (packed payload words, flat `u16` arrays)
//! and `restore` reloads. The reachable set, the worst span, and the
//! level count do not depend on where the search was cut, so a resumed
//! search certifies the same [`WorstCase`](super::WorstCase) as an
//! uninterrupted one; of the stats only `resident_bytes` (capacity
//! history) may differ.
//!
//! The fingerprint covers `(M, log n, policy)` — the inputs that define
//! the reachable set. It deliberately excludes the thread count (the
//! seen-set is re-sharded by hash on restore, so a run checkpointed
//! under 8 threads resumes under 1) and `max_states` (so a search that
//! tripped the cap can be resumed with a larger one).

use std::fs;

use pcb_json::Json;

use super::{packed::PackedState, ResumeError, Search, SearchPolicy};
use crate::fleet::checkpoint::{hash_desc, write_atomic};
use crate::fleet::CheckpointOptions;
use crate::params::Params;

/// Version stamp embedded in every search checkpoint.
pub const FORMAT_VERSION: u64 = 1;

fn fingerprint(params: Params, policy: SearchPolicy) -> u64 {
    hash_desc(&format!(
        "worst-case|{}|{}|{}",
        params.m(),
        params.log_n(),
        policy.name()
    ))
}

/// Flattens packed payloads into `[len, w0.., len, w0..]`.
fn flatten<'a>(payloads: impl Iterator<Item = &'a [u16]>) -> Json {
    let mut flat: Vec<Json> = Vec::new();
    for payload in payloads {
        flat.push(Json::from(payload.len() as u64));
        flat.extend(payload.iter().map(|&w| Json::from(u64::from(w))));
    }
    Json::Array(flat)
}

/// Parses a flat `[len, w0.., len, w0..]` array back into payloads.
fn unflatten(json: &Json, key: &str) -> Result<Vec<Vec<u16>>, String> {
    let items = json
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array `{key}`"))?;
    let word = |j: &Json| -> Result<u16, String> {
        j.as_u64()
            .and_then(|v| u16::try_from(v).ok())
            .ok_or_else(|| format!("non-u16 entry in `{key}`"))
    };
    let mut payloads = Vec::new();
    let mut i = 0usize;
    while i < items.len() {
        let len = word(&items[i])? as usize;
        i += 1;
        if i + len > items.len() {
            return Err(format!("truncated payload in `{key}`"));
        }
        let payload: Result<Vec<u16>, String> = items[i..i + len].iter().map(word).collect();
        payloads.push(payload?);
        i += len;
    }
    Ok(payloads)
}

/// Serializes the between-levels search state to `opts.path`, atomically.
pub(super) fn save(
    search: &Search,
    params: Params,
    policy: SearchPolicy,
    opts: &CheckpointOptions,
) -> Result<(), ResumeError> {
    let json = Json::object([
        ("format_version", Json::from(FORMAT_VERSION)),
        ("kind", Json::from("worst-case")),
        ("fingerprint", Json::from(fingerprint(params, policy))),
        ("levels", Json::from(search.stats.levels)),
        ("peak_frontier", Json::from(search.stats.peak_frontier)),
        ("worst", Json::from(search.worst)),
        (
            "frontier",
            flatten(search.frontier.iter().map(PackedState::payload)),
        ),
        (
            "seen",
            flatten(search.seen.iter().flat_map(|shard| shard.payloads())),
        ),
    ]);
    write_atomic(&opts.path, &format!("{json}\n"))
        .map_err(|e| ResumeError::Checkpoint(format!("writing {}: {e}", opts.path.display())))
}

/// Reloads a checkpoint into a freshly-constructed [`Search`], replacing
/// its root state wholesale.
pub(super) fn restore(
    search: &mut Search,
    params: Params,
    policy: SearchPolicy,
    opts: &CheckpointOptions,
) -> Result<(), ResumeError> {
    let path = &opts.path;
    let fail = |msg: String| ResumeError::Checkpoint(format!("{}: {msg}", path.display()));
    let text = fs::read_to_string(path).map_err(|e| fail(format!("cannot read: {e}")))?;
    let json = Json::parse(&text).map_err(|e| fail(format!("invalid JSON: {e}")))?;

    let version = json.get("format_version").and_then(Json::as_u64);
    if version != Some(FORMAT_VERSION) {
        return Err(fail(format!(
            "format version {version:?} (this build reads {FORMAT_VERSION})"
        )));
    }
    if json.get("kind").and_then(Json::as_str) != Some("worst-case") {
        return Err(fail("not a worst-case search checkpoint".into()));
    }
    if json.get("fingerprint").and_then(Json::as_u64) != Some(fingerprint(params, policy)) {
        return Err(fail(
            "fingerprint mismatch: checkpoint belongs to a different search \
             (M/log n/policy)"
                .into(),
        ));
    }
    let u64_field = |key: &str| -> Result<u64, ResumeError> {
        json.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| fail(format!("missing or non-integer field `{key}`")))
    };
    let levels = u64_field("levels")? as usize;
    let peak_frontier = u64_field("peak_frontier")? as usize;
    let worst = u64_field("worst")?;
    let frontier: Vec<PackedState> = unflatten(&json, "frontier")
        .map_err(fail)?
        .iter()
        .map(|p| PackedState::from_payload(p))
        .collect();
    let seen_payloads = unflatten(&json, "seen").map_err(fail)?;

    // Rebuild the seen-set from scratch, re-sharding by hash into this
    // run's interner count (the checkpoint may have been written under a
    // different thread count).
    let shards = search.shards;
    let mut seen: Vec<super::intern::Interner> = (0..shards)
        .map(|_| super::intern::Interner::new())
        .collect();
    for payload in &seen_payloads {
        let state = PackedState::from_payload(payload);
        seen[(state.hash64() % shards as u64) as usize].insert(&state);
    }
    let interned: usize = seen.iter().map(super::intern::Interner::len).sum();
    if interned != seen_payloads.len() {
        return Err(fail(format!(
            "seen-set has {} duplicate states ({} payloads, {interned} distinct)",
            seen_payloads.len() - interned,
            seen_payloads.len()
        )));
    }

    search.seen = seen;
    search.frontier = frontier;
    search.worst = worst;
    search.stats.levels = levels;
    search.stats.peak_frontier = peak_frontier;
    Ok(())
}
