//! The parallel experiment engine: deterministic fan-out of independent
//! work items across OS threads.
//!
//! Every experiment surface in this repository — bound sweeps
//! ([`sweep`](crate::sweep)), figure series ([`figures`](crate::figures)),
//! the reproduction checklist ([`reproduce`](crate::reproduce)), the
//! empirical program×manager grid in `pcb-bench`, and the exhaustive
//! worst-case search ([`exhaustive`](crate::exhaustive)) — is a map over
//! independent, pure work items. [`par_map`] fans such maps across
//! threads and collects results **in input order**, so parallel runs are
//! bit-identical to sequential ones; the only observable difference is
//! wall-clock time.
//!
//! The thread count comes from the `PCB_THREADS` environment variable
//! (unset, empty, `0`, or unparsable values fall back to the machine's
//! available parallelism). `PCB_THREADS=1` forces the exact sequential
//! code path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the engine will use: `PCB_THREADS` if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`].
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("PCB_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] threads, returning the
/// results in input order.
///
/// This is the environment-driven convenience form of
/// [`par_map_threads`]; code that has a resolved
/// [`RunConfig`](crate::RunConfig) should pass `config.threads` to
/// [`par_map_threads`] instead of re-reading `PCB_THREADS` here.
///
/// # Panics
///
/// Re-raises the first panic from `f`, like the sequential map would.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads(thread_count(), items, f)
}

/// Maps `f` over `items` on up to `threads` threads, returning the
/// results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs balance across workers; results are scattered back by index, so
/// the output is identical to `items.iter().map(f).collect()` regardless
/// of the thread count or scheduling. With one thread (or one item) it
/// *is* that sequential expression — no threads are spawned.
///
/// # Panics
///
/// Re-raises the first panic from `f`, like the sequential map would.
pub fn par_map_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let _span = pcb_telemetry::span!("parallel.par_map");
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // One span per shard lifetime: in a trace each worker
                    // renders as its own track, so load imbalance between
                    // shards is visible as ragged lane ends.
                    let _span = pcb_telemetry::span!("parallel.worker");
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        produced.push((i, f(item)));
                    }
                    produced
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(produced) => {
                    for (i, value) in produced {
                        slots[i] = Some(value);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Make early items slow so late items finish first on other threads.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn explicit_thread_counts_agree_with_sequential() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                par_map_threads(threads, &items, |&x| x * 3 + 1),
                expected,
                "threads={threads}"
            );
        }
        // 0 is clamped to the sequential path rather than panicking.
        assert_eq!(par_map_threads(0, &items, |&x| x * 3 + 1), expected);
    }
}
