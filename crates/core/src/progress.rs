//! Live progress heartbeat: a periodic stderr line plus an optional
//! JSONL stream, for watching long `fleet`/`simulate`/`worst-case` runs.
//!
//! The heartbeat is strictly a side channel. Reports are compared
//! byte-for-byte across thread counts, substrates, and heartbeat on/off,
//! so everything wall-clock-flavoured (rates, ETAs, elapsed seconds)
//! lives here — written to stderr and to the `--progress-out` JSONL
//! stream, never to stdout and never into a report. This is the same
//! timing/identity split `pcb bench diff` enforces on bench artifacts.
//!
//! Default policy (the `pcb fleet` "silent for 26 seconds" fix): with no
//! explicit flag the heartbeat turns on only when stderr is a terminal —
//! a human is watching — and stays off when stderr is piped, so captured
//! output and CI logs are unchanged.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, IsTerminal, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pcb_json::Json;

/// When the heartbeat emits.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ProgressMode {
    /// On when stderr is a terminal, off otherwise (the default).
    #[default]
    Auto,
    /// Explicitly off.
    Off,
    /// Explicitly on, at the given cadence in seconds (0 emits on every
    /// tick).
    Every(f64),
}

/// Resolved progress options for one command.
#[derive(Debug, Clone, Default)]
pub struct ProgressOptions {
    /// When to emit.
    pub mode: ProgressMode,
    /// Optional JSONL stream path (one object per emitted pulse).
    pub stream: Option<PathBuf>,
}

impl ProgressOptions {
    /// The effective cadence: `None` when the heartbeat is off. `Auto`
    /// resolves against stderr's terminal-ness (and turns on when a
    /// stream was explicitly requested).
    pub fn cadence(&self) -> Option<Duration> {
        const DEFAULT_EVERY: Duration = Duration::from_secs(2);
        match self.mode {
            ProgressMode::Off => None,
            ProgressMode::Every(secs) => Some(Duration::from_secs_f64(secs.max(0.0))),
            ProgressMode::Auto => {
                if std::io::stderr().is_terminal() || self.stream.is_some() {
                    Some(DEFAULT_EVERY)
                } else {
                    None
                }
            }
        }
    }
}

/// A throttled progress reporter. Create one per command, call
/// [`tick`](Heartbeat::tick) at natural work boundaries (a fleet chunk, a
/// BFS level, a simulation round); it emits at most once per cadence.
#[derive(Debug)]
pub struct Heartbeat {
    label: &'static str,
    /// `None` when the heartbeat is off: every call returns immediately.
    every: Option<Duration>,
    start: Instant,
    last_emit: Option<Instant>,
    stream: Option<BufWriter<File>>,
    /// First stream write error, surfaced by [`finish`](Heartbeat::finish).
    stream_error: Option<std::io::Error>,
}

impl Heartbeat {
    /// A heartbeat that never emits (for code paths that thread one
    /// unconditionally).
    pub fn disabled(label: &'static str) -> Self {
        Heartbeat {
            label,
            every: None,
            start: Instant::now(),
            last_emit: None,
            stream: None,
            stream_error: None,
        }
    }

    /// A heartbeat following `opts`.
    ///
    /// # Errors
    ///
    /// An I/O error when the JSONL stream file cannot be created.
    pub fn new(label: &'static str, opts: &ProgressOptions) -> std::io::Result<Self> {
        let every = opts.cadence();
        let stream = match (&opts.stream, every) {
            (Some(path), Some(_)) => Some(BufWriter::new(File::create(path)?)),
            _ => None,
        };
        Ok(Heartbeat {
            label,
            every,
            start: Instant::now(),
            last_emit: None,
            stream,
            stream_error: None,
        })
    }

    /// Whether the heartbeat will ever emit.
    pub fn active(&self) -> bool {
        self.every.is_some()
    }

    /// Reports progress: `done` out of `total` units (pass `total = 0`
    /// when the total is unknown — percent and ETA are then omitted),
    /// plus caller-supplied numeric fields rendered on the stderr line
    /// and embedded in the JSONL object. Throttled to the cadence.
    pub fn tick(&mut self, done: u64, total: u64, fields: &[(&'static str, Json)]) {
        let Some(every) = self.every else { return };
        let now = Instant::now();
        if let Some(last) = self.last_emit {
            if now.duration_since(last) < every {
                return;
            }
        }
        self.last_emit = Some(now);
        let elapsed = now.duration_since(self.start).as_secs_f64();
        let per_sec = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };

        let mut line = format!("[pcb {}] {done}", self.label);
        if total > 0 {
            let pct = 100.0 * done as f64 / total as f64;
            let _ = write!(line, "/{total} ({pct:.1}%)");
        }
        let _ = write!(line, " | {per_sec:.0}/s");
        if total > done && per_sec > 0.0 {
            let eta = (total - done) as f64 / per_sec;
            let _ = write!(line, " | ETA {eta:.0}s");
        }
        for (name, value) in fields {
            let _ = write!(line, " | {name}={value}");
        }
        eprintln!("{line}");

        if let Some(out) = &mut self.stream {
            let mut obj = vec![
                ("label", Json::from(self.label)),
                ("elapsed_secs", Json::from(elapsed)),
                ("done", Json::from(done)),
                ("total", Json::from(total)),
                ("per_sec", Json::from(per_sec)),
            ];
            obj.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
            let json = Json::object(obj);
            if let Err(e) = writeln!(out, "{json}") {
                self.stream_error.get_or_insert(e);
            }
        }
    }

    /// Flushes the stream and surfaces the first deferred write error.
    ///
    /// # Errors
    ///
    /// The first stream I/O error, if any occurred.
    pub fn finish(mut self) -> std::io::Result<()> {
        if let Some(e) = self.stream_error.take() {
            return Err(e);
        }
        if let Some(mut out) = self.stream.take() {
            out.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_heartbeat_never_emits_or_errors() {
        let mut hb = Heartbeat::disabled("test");
        assert!(!hb.active());
        hb.tick(1, 2, &[("x", Json::from(1u64))]);
        assert!(hb.finish().is_ok());
    }

    #[test]
    fn off_mode_has_no_cadence_and_every_zero_always_fires() {
        let off = ProgressOptions {
            mode: ProgressMode::Off,
            stream: None,
        };
        assert!(off.cadence().is_none());
        let eager = ProgressOptions {
            mode: ProgressMode::Every(0.0),
            stream: None,
        };
        assert_eq!(eager.cadence(), Some(Duration::ZERO));
    }

    #[test]
    fn stream_receives_one_json_object_per_pulse() {
        let dir = std::env::temp_dir().join("pcb-progress-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stream-{}.jsonl", std::process::id()));
        let opts = ProgressOptions {
            mode: ProgressMode::Every(0.0),
            stream: Some(path.clone()),
        };
        let mut hb = Heartbeat::new("unit", &opts).unwrap();
        assert!(hb.active());
        hb.tick(10, 100, &[("quarantined", Json::from(3u64))]);
        hb.tick(20, 100, &[]);
        hb.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("done").and_then(Json::as_u64), Some(10));
        assert_eq!(first.get("total").and_then(Json::as_u64), Some(100));
        assert_eq!(first.get("quarantined").and_then(Json::as_u64), Some(3));
        assert_eq!(
            first.get("label").and_then(Json::as_str),
            Some("unit"),
            "label field carries the command name"
        );
        std::fs::remove_file(&path).ok();
    }
}
