//! Robson's classic no-compaction bounds (JACM 1971, 1974), quoted in
//! Section 2.2 of the paper.
//!
//! For programs in `P2(M, n)` (power-of-two sizes) and managers that never
//! move objects, Robson proved matching bounds:
//!
//! ```text
//! min_A HS(A, P_o)      = M·(½·log₂ n + 1) − n + 1   (lower, bad program P_o)
//! max_P HS(A_o, P)      = M·(½·log₂ n + 1) − n + 1   (upper, allocator A_o)
//! ```
//!
//! For arbitrary sizes one rounds up to powers of two, at most doubling
//! live space: the upper bound becomes `2·(M·(½·log₂ n + 1) − n + 1)`.

use crate::params::Params;

/// Robson's exact bound `M·(½·log₂ n + 1) − n + 1` for `P2(M, n)` without
/// compaction (both the lower and the matching upper bound).
pub fn bound_p2(params: Params) -> f64 {
    let m = params.m() as f64;
    let n = params.n() as f64;
    m * (0.5 * params.log_n() as f64 + 1.0) - n + 1.0
}

/// The doubled upper bound for arbitrary-size programs in `P(M, n)`
/// (round every request up to a power of two).
pub fn upper_bound_arbitrary(params: Params) -> f64 {
    2.0 * bound_p2(params)
}

/// [`bound_p2`] as a waste factor (multiple of `M`).
pub fn factor_p2(params: Params) -> f64 {
    bound_p2(params) / params.m() as f64
}

/// [`upper_bound_arbitrary`] as a waste factor.
pub fn factor_arbitrary(params: Params) -> f64 {
    upper_bound_arbitrary(params) / params.m() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_value() {
        // M = 2^28, n = 2^20: factor = 0.5*20 + 1 − (n−1)/M ≈ 11.
        let p = Params::paper_example(10);
        let f = factor_p2(p);
        assert!((f - 11.0).abs() < 0.01, "factor = {f}");
        assert!((factor_arbitrary(p) - 22.0).abs() < 0.02);
    }

    #[test]
    fn fixed_size_programs_need_only_m() {
        // log n = 0 is rejected by Params, but log n = 1 gives 1.5M − 1:
        // even two sizes already force fragmentation.
        let p = Params::new(1 << 10, 1, 10).unwrap();
        let f = bound_p2(p);
        assert!((f - (1.5 * 1024.0 - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn bound_grows_with_n() {
        let f1 = factor_p2(Params::new(1 << 20, 8, 10).unwrap());
        let f2 = factor_p2(Params::new(1 << 20, 12, 10).unwrap());
        assert!(f2 > f1);
    }
}
