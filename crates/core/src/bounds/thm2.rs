//! Theorem 2 — the paper's improved upper bound: a c-partial manager (for
//! `c > ½·log₂ n`) that serves every program in `P(M, n)` with heap
//!
//! ```text
//! HS ≤ 2M·Σ_{i=0}^{log₂ n} max(aᵢ, 1/(4 − 2/c)) + 2n·log₂ n
//!
//! a₀ = 1,   aᵢ = (1 − 1/c)·max_{j=0..i−1} max(1/c, 2^{j−i}·a_j)
//! ```
//!
//! **Reconstruction note.** The theorem's display is damaged in the
//! available text; this is the most defensible reading (see DESIGN.md §4,
//! note 1). What the paper states unambiguously and what this module
//! faithfully reproduces in `fig3`: (a) the bound applies for
//! `c > ½·log₂ n`; (b) it improves on the prior best
//! `min((c+1)·M, Robson-doubled)` on `c ∈ [20, 100]` at the Figure 3
//! parameters; (c) the improvement is modest (the paper calls the result
//! minor). The exact improvement percentage depends on the reading — the
//! proof lives only in the unpublished full version.

use crate::bounds::{bp11, robson};
use crate::params::Params;

/// The recursive coefficients `a₀..a_{log n}` of Theorem 2.
pub fn coefficients(params: Params) -> Vec<f64> {
    let c = params.c() as f64;
    let log_n = params.log_n() as usize;
    let mut a = Vec::with_capacity(log_n + 1);
    a.push(1.0f64);
    for i in 1..=log_n {
        let best = (0..i)
            .map(|j| (1.0 / c).max(a[j] / (1u64 << (i - j)) as f64))
            .fold(f64::NEG_INFINITY, f64::max);
        a.push((1.0 - 1.0 / c) * best);
    }
    a
}

/// Whether Theorem 2 applies: `c > ½·log₂ n`.
pub fn applies(params: Params) -> bool {
    2 * params.c() > params.log_n() as u64
}

/// Theorem 2's heap bound in words; `None` when `c ≤ ½·log₂ n`.
pub fn upper_bound(params: Params) -> Option<f64> {
    if !applies(params) {
        return None;
    }
    let c = params.c() as f64;
    let floor = 1.0 / (4.0 - 2.0 / c);
    let sum: f64 = coefficients(params).into_iter().map(|a| a.max(floor)).sum();
    let m = params.m() as f64;
    let n = params.n() as f64;
    Some(2.0 * m * sum + 2.0 * n * params.log_n() as f64)
}

/// [`upper_bound`] as a waste factor.
pub fn factor(params: Params) -> Option<f64> {
    upper_bound(params).map(|b| b / params.m() as f64)
}

/// The prior best upper bound (what Figure 3 compares against):
/// `min((c+1)·M, Robson-doubled)`, as a waste factor.
pub fn prior_best_factor(params: Params) -> f64 {
    bp11::upper_factor(params).min(robson::factor_arbitrary(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_start_at_one_and_stay_in_unit_interval() {
        for c in [11u64, 20, 50, 100] {
            let p = Params::paper_example(c);
            let a = coefficients(p);
            assert_eq!(a.len(), 21);
            assert_eq!(a[0], 1.0);
            for (i, &ai) in a.iter().enumerate().skip(1) {
                assert!(ai > 0.0 && ai < 1.0, "c={c} a[{i}] = {ai}");
            }
            // And they have a floor: a_i >= (1-1/c)/c.
            let floor = (1.0 - 1.0 / c as f64) / c as f64;
            assert!(a.iter().skip(1).all(|&ai| ai >= floor - 1e-12));
        }
    }

    #[test]
    fn applicability_threshold() {
        assert!(applies(Params::paper_example(11)));
        assert!(!applies(Params::paper_example(10)));
        assert!(upper_bound(Params::paper_example(10)).is_none());
    }

    #[test]
    fn improves_on_prior_best_across_figure_3_range() {
        // The paper: "for c's between 20 and 100 we get improvement".
        for c in (20..=100).step_by(5) {
            let p = Params::paper_example(c);
            let new = factor(p).expect("applies");
            let prior = prior_best_factor(p);
            assert!(new < prior, "c={c}: {new} !< {prior}");
        }
    }

    #[test]
    fn never_beats_the_lower_bound() {
        // Sanity: an upper bound for all programs can never undercut the
        // lower bound that one program forces.
        use crate::bounds::thm1;
        for c in (11..=100).step_by(7) {
            let p = Params::paper_example(c);
            let upper = factor(p).unwrap();
            let lower = thm1::factor(p);
            assert!(upper >= lower, "c={c}: upper {upper} < lower {lower}");
        }
    }

    #[test]
    fn prior_best_switches_from_bp11_to_robson() {
        // (c+1) wins for small c; Robson-doubled (~22) wins for c > 21.
        let small = Params::paper_example(12);
        assert_eq!(prior_best_factor(small), 13.0);
        let large = Params::paper_example(80);
        assert!((prior_best_factor(large) - robson::factor_arbitrary(large)).abs() < 1e-9);
    }
}
