//! Theorem 1 — the paper's main result: the lower bound `HS ≥ M·h`
//! against every c-partial manager.
//!
//! The formula itself lives in [`pcb_adversary`] (Algorithm 1 computes its
//! allocation fraction `x` from `h`, so the adversary crate owns the
//! math); this module adapts it to [`Params`] and adds the `ρ`-optimized
//! bound the figures plot.

use crate::params::Params;

pub use pcb_adversary::{rho_feasible, stage1_alloc_fraction, stage2_alloc_fraction};

/// The waste factor `h(ρ; M, n, c)` for a specific density exponent `ρ`;
/// `None` when `ρ` is infeasible.
pub fn factor_for_rho(params: Params, rho: u32) -> Option<f64> {
    pcb_adversary::waste_factor(params.m(), params.log_n(), params.c(), rho)
}

/// Theorem 1's bound: the best `(ρ, h)` over all feasible `ρ`, or `None`
/// if no `ρ` is feasible for these parameters.
pub fn optimal(params: Params) -> Option<(u32, f64)> {
    pcb_adversary::optimal_rho(params.m(), params.log_n(), params.c())
}

/// The lower-bound waste factor, clamped at the trivial 1 (a heap smaller
/// than the live space can never work). This is what Figure 1 plots.
pub fn factor(params: Params) -> f64 {
    optimal(params).map_or(1.0, |(_, h)| h.max(1.0))
}

/// The lower bound in words: `M · factor`.
pub fn lower_bound(params: Params) -> f64 {
    factor(params) * params.m() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_values_from_the_paper() {
        assert!((factor(Params::paper_example(10)) - 2.0).abs() < 0.05);
        assert!((factor(Params::paper_example(50)) - 3.15).abs() < 0.05);
        assert!((factor(Params::paper_example(100)) - 3.5).abs() < 0.06);
    }

    #[test]
    fn always_at_least_trivial() {
        for c in [2u64, 3, 5, 1000] {
            let p = Params::new(1 << 16, 8, c).unwrap();
            assert!(factor(p) >= 1.0, "c={c}");
        }
    }

    #[test]
    fn beats_bp11_everywhere_in_figure_1_range() {
        use crate::bounds::bp11;
        for c in (10..=100).step_by(5) {
            let p = Params::paper_example(c);
            assert!(
                factor(p) > bp11::lower_factor(p),
                "c={c}: new bound must beat [4]"
            );
        }
    }

    #[test]
    fn consistent_with_robson_in_the_no_compaction_limit() {
        // As c grows, the c-partial bound approaches but must never exceed
        // Robson's no-compaction bound (compaction can only help the
        // manager; the c-partial adversary is weaker than Robson's full
        // freedom... in fact Robson's bound dominates).
        use crate::bounds::robson;
        for c in [100u64, 1000, 100_000] {
            let p = Params::paper_example(c);
            assert!(
                factor(p) <= robson::factor_p2(p),
                "c={c}: h must stay below Robson's matching bound"
            );
        }
    }
}
