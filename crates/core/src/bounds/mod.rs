//! Every bound the paper states, evaluable as code:
//!
//! | module | result | source |
//! |---|---|---|
//! | [`thm1`] | lower bound `M·h` for c-partial managers | **this paper, Theorem 1** |
//! | [`thm2`] | upper bound for c-partial managers | **this paper, Theorem 2** |
//! | [`robson`] | matching no-compaction bounds | Robson 1971/1974 (§2.2) |
//! | [`bp11`] | `(c+1)·M` upper bound and the asymptotic lower bound | Bendersky–Petrank POPL'11 (§2.2) |

pub mod bp11;
pub mod robson;
pub mod thm1;
pub mod thm2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    #[test]
    fn the_ordering_story_of_the_paper_holds() {
        // At realistic parameters: trivial ≤ \[4\]-lower ≤ Thm1-lower ≤
        // Thm2-upper ≤ prior-best-upper.
        for c in (20..=100).step_by(10) {
            let p = Params::paper_example(c);
            let bp11_lower = bp11::lower_factor(p);
            let thm1_lower = thm1::factor(p);
            let thm2_upper = thm2::factor(p).unwrap();
            let prior_upper = thm2::prior_best_factor(p);
            assert!(1.0 <= bp11_lower, "c={c}");
            assert!(bp11_lower <= thm1_lower, "c={c}");
            assert!(thm1_lower <= thm2_upper, "c={c}");
            assert!(thm2_upper <= prior_upper, "c={c}");
        }
    }
}
