//! The Bendersky–Petrank POPL 2011 bounds (\[4\] in the paper), quoted in
//! Section 2.2: the first bounds for *partial* compaction.
//!
//! Upper bound: a simple c-partial manager serves every program in
//! `P(M, n)` with heap `(c+1)·M`.
//!
//! Lower bound (two regimes, reconstructed from the paper's display —
//! see DESIGN.md §4 note 1):
//!
//! ```text
//! c ≤ 4·log₂ n:  M·min(c, (1/10)·log₂(n)/log₂(c+1)) − 5n
//! c > 4·log₂ n:  (1/6)·M·log₂(n)/(log₂ log₂ n + 2) − n/2
//! ```
//!
//! At the paper's realistic parameters this lower bound stays below the
//! trivial `M` for every `c ∈ [10, 100]` — exactly the observation that
//! motivates the paper ("previous results provide nothing but the trivial
//! lower bound"), reproduced by `fig1`.

use crate::params::Params;

/// The `(c+1)·M` upper bound of \[4\].
pub fn upper_bound(params: Params) -> f64 {
    (params.c() as f64 + 1.0) * params.m() as f64
}

/// [`upper_bound`] as a waste factor.
pub fn upper_factor(params: Params) -> f64 {
    params.c() as f64 + 1.0
}

/// The POPL'11 lower bound on heap size (words), without clamping.
pub fn lower_bound_raw(params: Params) -> f64 {
    let m = params.m() as f64;
    let n = params.n() as f64;
    let log_n = params.log_n() as f64;
    let c = params.c() as f64;
    if c <= 4.0 * log_n {
        let factor = c.min(0.1 * log_n / (c + 1.0).log2());
        m * factor - 5.0 * n
    } else {
        m * log_n / (6.0 * (log_n.log2() + 2.0)) - n / 2.0
    }
}

/// The POPL'11 lower bound clamped at the trivial bound `M` (a heap
/// smaller than the live space can never work).
pub fn lower_bound(params: Params) -> f64 {
    lower_bound_raw(params).max(params.m() as f64)
}

/// [`lower_bound`] as a waste factor (`≥ 1`).
pub fn lower_factor(params: Params) -> f64 {
    lower_bound(params) / params.m() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_at_the_papers_parameters() {
        // The paper: "throughout the range of c = 10..100, the lower bound
        // from \[4\] gives nothing but the trivial lower bound".
        for c in (10..=100).step_by(10) {
            let p = Params::paper_example(c);
            assert!(
                lower_bound_raw(p) < p.m() as f64,
                "c={c}: raw bound should be sub-trivial"
            );
            assert_eq!(lower_factor(p), 1.0, "c={c}");
        }
    }

    #[test]
    fn meaningful_only_for_huge_objects() {
        // The paper: "[4] provides a bound higher than the obvious M only
        // for M > n = 16TB". With n = 2^44 words and c = 10 the factor
        // term log n/(10·log(c+1)) = 44/34.6 ≈ 1.27 > 1 finally bites
        // (once M is large enough to absorb the −5n term).
        let p = Params::new(1 << 49, 44, 10).unwrap();
        assert!(lower_bound_raw(p) > p.m() as f64);
        assert!(lower_factor(p) > 1.0);
    }

    #[test]
    fn upper_bound_is_linear_in_c() {
        let p = Params::paper_example(50);
        assert_eq!(upper_factor(p), 51.0);
        assert_eq!(upper_bound(p), 51.0 * p.m() as f64);
    }

    #[test]
    fn large_c_regime_kicks_in() {
        // 4 log n = 48 for log n = 12; c = 100 uses the second regime.
        let p = Params::new(1 << 20, 12, 100).unwrap();
        let m = p.m() as f64;
        let expect = m * 12.0 / (6.0 * ((12.0f64).log2() + 2.0)) - 2048.0;
        assert!((lower_bound_raw(p) - expect).abs() < 1e-6);
    }
}
