//! Minimal ASCII line charts for terminal-first figure inspection
//! (`pcb figure 1 --plot`).
//!
//! One canvas, multiple series, distinct glyphs, a y-axis with min/max
//! labels — enough to eyeball the shape of every figure without leaving
//! the terminal.

use crate::sweep::Series;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders the series onto a `width × height` canvas.
///
/// Points are mapped linearly from the joint x/y ranges of all series;
/// each series draws with its own glyph (later series overwrite earlier
/// ones on collisions). Returns an empty string if no series has points.
///
/// ```
/// use partial_compaction::plot::render;
/// use partial_compaction::sweep::{over_c, Bound};
/// let s = over_c(Bound::Thm1Lower, 1 << 28, 20, 10..=100);
/// let chart = render(&[s], 60, 12);
/// assert!(chart.contains('*'));
/// assert!(chart.lines().count() >= 12);
/// ```
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 3, "canvas too small");
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx] = glyph;
        }
    }

    let mut out = String::new();
    for (row, line) in canvas.iter().enumerate() {
        let label = if row == 0 {
            format!("{y_max:>8.2} ")
        } else if row == height - 1 {
            format!("{y_min:>8.2} ")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:9}{:<.1}{}{:>.1}\n",
        "",
        x_min,
        " ".repeat(width.saturating_sub(8)),
        x_max
    ));
    // Legend.
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:9}{} = {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{over_c, Bound};

    #[test]
    fn renders_figure_1_shape() {
        let s = over_c(Bound::Thm1Lower, 1 << 28, 20, 10..=100);
        let chart = render(&[s], 60, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("= thm1-lower"));
        // Monotone series: the topmost glyph row should be near the right.
        let first_glyph_row = chart.lines().position(|l| l.contains('*')).unwrap();
        let star_col = chart
            .lines()
            .nth(first_glyph_row)
            .unwrap()
            .rfind('*')
            .unwrap();
        assert!(star_col > 30, "peak should be on the right: col {star_col}");
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = over_c(Bound::Thm1Lower, 1 << 28, 20, 10..=100);
        let b = over_c(Bound::Bp11Lower, 1 << 28, 20, 10..=100);
        let chart = render(&[a, b], 40, 8);
        assert!(chart.contains('*') && chart.contains('o'));
        assert!(chart.contains("= bp11-lower"));
    }

    #[test]
    fn empty_series_renders_empty() {
        let empty = Series {
            label: "nothing".into(),
            points: Vec::new(),
        };
        assert_eq!(render(&[empty], 40, 8), "");
    }

    #[test]
    fn axis_labels_show_extremes() {
        let s = over_c(Bound::Thm1Lower, 1 << 28, 20, 10..=100);
        let chart = render(&[s], 40, 8);
        assert!(chart.contains("10"), "x min");
        assert!(chart.contains("100"), "x max");
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_panics() {
        let s = over_c(Bound::Thm1Lower, 1 << 28, 20, 10..=20);
        let _ = render(&[s], 4, 2);
    }
}
