//! Structural comparison of benchmark artifacts (`BENCH_parallel.json`,
//! `BENCH_obs.json`, and future bench files): the regression gate behind
//! `pcb bench diff`.
//!
//! A bench artifact mixes three kinds of fields, and the comparator
//! treats each differently:
//!
//! * **Host metadata** (`smoke`, `threads`, `host_cores`) describes the
//!   machine and mode that produced the numbers. When any of it differs
//!   between the two files, the runs are *not comparable*: every value
//!   delta — including workload-scale identity fields — degrades to a
//!   warning and only the document *structure* (key sets, types, array
//!   lengths) is enforced. A 1-CPU smoke run can therefore be structure-
//!   checked against a checked-in 4-thread full run without gating apples
//!   against oranges.
//! * **Timing** (`*_seconds`, `speedup`, `throughput*`, `*_pct`,
//!   `*overhead*`, `*within_budget*`) is noisy by nature and compares
//!   within a tolerance: relative for magnitudes, absolute (percentage
//!   points) for `*_pct` fields whose baseline legitimately crosses zero.
//! * **Identity** (everything else: names, item counts, event counts,
//!   `reports_identical`, …) is deterministic and must match exactly.

use std::fmt;

use pcb_json::Json;

/// Top-level keys describing the producing host/mode rather than the
/// measured workload.
const HOST_KEYS: [&str; 3] = ["smoke", "threads", "host_cores"];

/// Whether a leaf key holds a wall-clock-derived (noisy) value.
fn is_timing_key(key: &str) -> bool {
    key.contains("seconds")
        || key.contains("speedup")
        || key.contains("throughput")
        || key.contains("overhead")
        || key.ends_with("_pct")
        || key.contains("within_budget")
}

/// One observation from the comparison, with the JSON path it concerns.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Dotted JSON path (`workloads[2].speedup`).
    pub path: String,
    /// What was observed.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// The outcome of comparing a new artifact against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// False when host metadata differs — timing and identity deltas are
    /// then informational only.
    pub comparable: bool,
    /// Host-metadata differences (never failures).
    pub host_mismatches: Vec<Finding>,
    /// Gate-breaking differences; non-empty means the diff fails.
    pub failures: Vec<Finding>,
    /// Informational differences (tolerated timing drift, or any value
    /// delta between incomparable runs).
    pub warnings: Vec<Finding>,
    /// Leaf values compared.
    pub leaves_checked: usize,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.comparable {
            out.push_str(
                "note: host metadata differs; value deltas are informational, \
                 structure is still enforced\n",
            );
        }
        for finding in &self.host_mismatches {
            out.push_str(&format!("host     {finding}\n"));
        }
        for finding in &self.warnings {
            out.push_str(&format!("warn     {finding}\n"));
        }
        for finding in &self.failures {
            out.push_str(&format!("FAIL     {finding}\n"));
        }
        out.push_str(&format!(
            "{}: {} leaves checked, {} failures, {} warnings\n",
            if self.passed() { "pass" } else { "fail" },
            self.leaves_checked,
            self.failures.len(),
            self.warnings.len(),
        ));
        out
    }
}

struct Differ {
    tolerance_pct: f64,
    comparable: bool,
    report: DiffReport,
}

/// Compares a freshly generated bench artifact against a baseline.
///
/// `tolerance_pct` bounds timing drift: relative percent for magnitudes
/// (`seconds`, `speedup`, `throughput`), absolute percentage points for
/// `*_pct` fields.
///
/// ```
/// use partial_compaction::benchdiff::compare;
/// use pcb_json::Json;
/// let baseline = Json::parse(r#"{"smoke":false,"cells":8,"raw_seconds":1.0}"#).unwrap();
/// let same = compare(&baseline, &baseline, 10.0);
/// assert!(same.passed() && same.comparable);
///
/// let slow = Json::parse(r#"{"smoke":false,"cells":8,"raw_seconds":2.0}"#).unwrap();
/// assert!(!compare(&slow, &baseline, 25.0).passed(), "2x regression trips the gate");
/// ```
pub fn compare(new: &Json, baseline: &Json, tolerance_pct: f64) -> DiffReport {
    // Host metadata decides up front whether values are comparable at all.
    let mut differ = Differ {
        tolerance_pct,
        comparable: true,
        report: DiffReport {
            comparable: true,
            ..DiffReport::default()
        },
    };
    for key in HOST_KEYS {
        let (a, b) = (new.get(key), baseline.get(key));
        if let (Some(a), Some(b)) = (a, b) {
            if a != b {
                differ.comparable = false;
                differ.report.host_mismatches.push(Finding {
                    path: key.to_owned(),
                    message: format!("{a} vs baseline {b}"),
                });
            }
        }
    }
    differ.report.comparable = differ.comparable;
    differ.walk("$", "", new, baseline);
    differ.report
}

/// Convenience wrapper: parse two files and compare them.
///
/// # Errors
///
/// Returns a message if either file cannot be read or parsed.
pub fn compare_files(
    new_path: &str,
    baseline_path: &str,
    tolerance_pct: f64,
) -> Result<DiffReport, String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    Ok(compare(
        &load(new_path)?,
        &load(baseline_path)?,
        tolerance_pct,
    ))
}

impl Differ {
    fn fail(&mut self, path: &str, message: String) {
        self.report.failures.push(Finding {
            path: path.to_owned(),
            message,
        });
    }

    fn warn(&mut self, path: &str, message: String) {
        self.report.warnings.push(Finding {
            path: path.to_owned(),
            message,
        });
    }

    /// Value mismatch that would fail on comparable runs: failure or
    /// warning depending on comparability.
    fn mismatch(&mut self, path: &str, message: String) {
        if self.comparable {
            self.fail(path, message);
        } else {
            self.warn(path, message);
        }
    }

    fn walk(&mut self, path: &str, key: &str, new: &Json, baseline: &Json) {
        match (new, baseline) {
            (Json::Object(a), Json::Object(b)) => {
                for (k, vb) in b {
                    match a.get(k) {
                        Some(va) => self.walk(&format!("{path}.{k}"), k, va, vb),
                        // Structure is enforced regardless of comparability.
                        None => self.fail(
                            &format!("{path}.{k}"),
                            "missing from the new artifact".into(),
                        ),
                    }
                }
                for k in a.keys() {
                    if !b.contains_key(k) {
                        self.fail(&format!("{path}.{k}"), "not present in the baseline".into());
                    }
                }
            }
            (Json::Array(a), Json::Array(b)) => {
                if a.len() != b.len() {
                    // Array shape is structure: enforced even across hosts.
                    self.fail(
                        path,
                        format!("array length {} vs baseline {}", a.len(), b.len()),
                    );
                }
                for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                    self.walk(&format!("{path}[{i}]"), key, va, vb);
                }
            }
            _ => self.leaf(path, key, new, baseline),
        }
    }

    fn leaf(&mut self, path: &str, key: &str, new: &Json, baseline: &Json) {
        self.report.leaves_checked += 1;
        if HOST_KEYS.contains(&key) {
            return; // Already handled up front.
        }
        let numeric = (new.as_f64(), baseline.as_f64());
        if let (Some(a), Some(b)) = numeric {
            if is_timing_key(key) {
                self.timing_leaf(path, key, a, b);
            } else if a != b {
                self.mismatch(
                    path,
                    format!("{new} vs baseline {baseline} (identity field)"),
                );
            }
            return;
        }
        // Non-numeric leaf (string, bool, null) or type mismatch. Booleans
        // derived from timing (e.g. `attached_within_budget`) stay tolerant.
        if new != baseline {
            if is_timing_key(key) {
                self.mismatch(
                    path,
                    format!("{new} vs baseline {baseline} (timing-derived)"),
                );
            } else if std::mem::discriminant(new) != std::mem::discriminant(baseline)
                && !matches!((new, baseline), (Json::Int(_), Json::Float(_)))
                && !matches!((new, baseline), (Json::Float(_), Json::Int(_)))
            {
                self.fail(path, format!("type changed: {new} vs baseline {baseline}"));
            } else {
                self.mismatch(
                    path,
                    format!("{new} vs baseline {baseline} (identity field)"),
                );
            }
        }
    }

    fn timing_leaf(&mut self, path: &str, key: &str, new: f64, baseline: f64) {
        let (delta, unit, breached) = if key.ends_with("_pct") {
            // Overhead percentages legitimately hover around zero, where a
            // relative comparison explodes; gate on percentage points.
            let delta = new - baseline;
            (delta, "pp", delta.abs() > self.tolerance_pct)
        } else {
            let denom = baseline.abs().max(new.abs()).max(1e-9);
            let rel = (new - baseline) / denom * 100.0;
            (rel, "%", rel.abs() > self.tolerance_pct)
        };
        if !breached {
            return;
        }
        let message = format!(
            "{new:.6} vs baseline {baseline:.6} ({delta:+.1}{unit}, tolerance {}{unit})",
            self.tolerance_pct
        );
        if self.comparable {
            self.fail(path, message);
        } else {
            self.warn(path, message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("test document parses")
    }

    const BASE: &str = r#"{
        "smoke": false, "threads": 4, "host_cores": 4, "cells": 80,
        "raw_seconds": 8.7, "detached_overhead_pct": -0.5,
        "reports_identical": true, "attached_within_budget": true,
        "workloads": [
            {"name": "sweep", "items": 5982, "seq_seconds": 0.01, "speedup": 0.73}
        ]
    }"#;

    #[test]
    fn self_comparison_passes_clean() {
        let doc = parse(BASE);
        let report = compare(&doc, &doc, 10.0);
        assert!(report.passed());
        assert!(report.comparable);
        assert!(report.host_mismatches.is_empty());
        assert!(report.warnings.is_empty());
        assert!(report.leaves_checked >= 10);
    }

    #[test]
    fn injected_timing_regression_fails_the_gate() {
        let doc = parse(BASE);
        let slow = parse(&BASE.replace("\"raw_seconds\": 8.7", "\"raw_seconds\": 17.4"));
        let report = compare(&slow, &doc, 25.0);
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.path.contains("raw_seconds")));
    }

    #[test]
    fn timing_drift_inside_tolerance_passes() {
        let doc = parse(BASE);
        let near = parse(&BASE.replace("\"raw_seconds\": 8.7", "\"raw_seconds\": 9.2"));
        assert!(compare(&near, &doc, 10.0).passed());
    }

    #[test]
    fn pct_fields_gate_on_percentage_points() {
        let doc = parse(BASE);
        // -0.5 -> +6: a 6.5pp swing. Relative comparison would see 1300%.
        let drift = parse(&BASE.replace(
            "\"detached_overhead_pct\": -0.5",
            "\"detached_overhead_pct\": 6.0",
        ));
        assert!(
            compare(&drift, &doc, 10.0).passed(),
            "6.5pp < 10pp tolerance"
        );
        assert!(
            !compare(&drift, &doc, 5.0).passed(),
            "6.5pp > 5pp tolerance"
        );
    }

    #[test]
    fn identity_fields_are_strict() {
        let doc = parse(BASE);
        let altered = parse(&BASE.replace("\"items\": 5982", "\"items\": 5983"));
        let report = compare(&altered, &doc, 100.0);
        assert!(!report.passed(), "identity drift fails at any tolerance");
    }

    #[test]
    fn host_mismatch_downgrades_values_but_enforces_structure() {
        let doc = parse(BASE);
        let smoke = parse(
            &BASE
                .replace("\"smoke\": false", "\"smoke\": true")
                .replace("\"cells\": 80", "\"cells\": 8")
                .replace("\"raw_seconds\": 8.7", "\"raw_seconds\": 0.3"),
        );
        let report = compare(&smoke, &doc, 25.0);
        assert!(
            report.passed(),
            "apples vs oranges never gates:\n{}",
            report.render()
        );
        assert!(!report.comparable);
        assert!(!report.host_mismatches.is_empty());
        assert!(!report.warnings.is_empty(), "deltas still reported");

        // ... but a missing key is a structural break even then.
        let broken = parse(
            &BASE
                .replace("\"smoke\": false", "\"smoke\": true")
                .replace("\"raw_seconds\": 8.7, ", ""),
        );
        assert!(!compare(&broken, &doc, 25.0).passed());
    }

    #[test]
    fn timing_derived_booleans_are_tolerant_only_when_incomparable() {
        let doc = parse(BASE);
        let flipped = parse(&BASE.replace(
            "\"attached_within_budget\": true",
            "\"attached_within_budget\": false",
        ));
        assert!(
            !compare(&flipped, &doc, 25.0).passed(),
            "comparable: gate trips"
        );
        let flipped_smoke = parse(
            &BASE.replace("\"smoke\": false", "\"smoke\": true").replace(
                "\"attached_within_budget\": true",
                "\"attached_within_budget\": false",
            ),
        );
        assert!(
            compare(&flipped_smoke, &doc, 25.0).passed(),
            "incomparable: warning"
        );
    }

    #[test]
    fn extra_keys_in_the_new_artifact_fail() {
        let doc = parse(BASE);
        let extra = parse(&BASE.replace("\"cells\": 80", "\"cells\": 80, \"new_field\": 1"));
        let report = compare(&extra, &doc, 10.0);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.path.contains("new_field")));
    }
}
