//! High-level simulation harness: pit an adversary against a manager and
//! get a report comparing the measured heap against the paper's bounds.
//!
//! The entry point is the [`Sim`] builder, which also carries the
//! observability hooks: an external [`Observer`], a per-round
//! [`TimeSeries`], and manager-side [`StatSink`] counters can all be
//! attached to the same run.

use core::fmt;

use pcb_adversary::{PfConfig, PfProgram, PfVariant, RobsonProgram};
use pcb_alloc::{ManagerKind, MirrorImpl};
use pcb_chaos::FaultPlan;
use pcb_heap::{
    Execution, ExecutionError, Heap, MemoryManager, Observer, Observers, Program, StatSink,
    Substrate, TimeSeries,
};

use crate::bounds::thm1;
use crate::params::Params;

/// Which adversary to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// The paper's `P_F` (Algorithm 1) with the given variant.
    Pf(PfVariant),
    /// Robson's `P_R` (Algorithm 2); meaningful against non-moving
    /// managers.
    Robson,
}

impl Adversary {
    /// The paper's full `P_F`.
    pub const PF: Adversary = Adversary::Pf(PfVariant::FULL);
}

/// Outcome of one adversary-vs-manager simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The underlying execution report.
    pub execution: pcb_heap::Report,
    /// The bound the run is compared against, clamped to at least the
    /// trivial factor 1 (a heap can never use less than the live space).
    pub h: f64,
    /// The raw Theorem-1 factor before clamping. Values below 1 mean the
    /// parameters are too weak for a non-trivial bound — information the
    /// clamped `h` erases.
    pub h_raw: f64,
    /// The density exponent `ρ` used (0 for Robson runs).
    pub rho: u32,
    /// Measured waste divided by the clamped bound `h` (≥ 1 certifies the
    /// lower bound empirically for this manager).
    pub waste_over_bound: f64,
    /// `s₁, s₂, q₁, q₂` (allocated / compacted words per stage; zeros for
    /// Robson runs).
    pub stage_words: [u64; 4],
    /// The final potential `u(t_finish)` in words, when tracked.
    pub final_potential: Option<i128>,
    /// Analysis violations recorded during a validated run.
    pub violations: Vec<String>,
    /// Per-round samples, when requested via [`Sim::series`].
    pub series: Option<TimeSeries>,
    /// Manager-side counters/histograms, when requested via [`Sim::stats`].
    pub stats: Option<StatSink>,
}

impl pcb_json::ToJson for SimReport {
    fn to_json(&self) -> pcb_json::Json {
        use pcb_json::Json;
        Json::object([
            ("execution", self.execution.to_json()),
            ("h", Json::from(self.h)),
            ("h_raw", Json::from(self.h_raw)),
            ("rho", Json::from(self.rho)),
            ("waste_over_bound", Json::from(self.waste_over_bound)),
            (
                "stage_words",
                Json::array(self.stage_words.iter().map(|&w| Json::from(w))),
            ),
            (
                "final_potential",
                match self.final_potential {
                    Some(u) => Json::Int(u),
                    None => Json::Null,
                },
            ),
            (
                "violations",
                Json::array(self.violations.iter().map(|v| Json::from(v.as_str()))),
            ),
            (
                "series",
                match &self.series {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "stats",
                match &self.stats {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: HS/M = {:.3} (bound h = {:.3}, ratio {:.3}), moved {:.4}",
            self.execution.program,
            self.execution.manager,
            self.execution.waste_factor,
            self.h,
            self.waste_over_bound,
            self.execution.moved_fraction
        )
    }
}

/// A configurable adversary-vs-manager simulation.
///
/// Replaces the old positional `run(params, adversary, manager, validate)`
/// call with named steps, and is the only way to attach observability:
///
/// ```
/// use partial_compaction::{sim, ManagerKind, Params};
/// let params = Params::new(1 << 13, 9, 15)?;
/// let report = sim::Sim::new(params)
///     .adversary(sim::Adversary::PF)
///     .manager(ManagerKind::Tlsf)
///     .validate(false)
///     .series(1)
///     .run()
///     .expect("runs");
/// assert!(report.waste_over_bound >= 0.9);
/// let series = report.series.expect("per-round series requested");
/// assert_eq!(series.len(), report.execution.rounds as usize);
/// # Ok::<(), partial_compaction::ParamsError>(())
/// ```
pub struct Sim<'a> {
    params: Params,
    adversary: Adversary,
    manager: ManagerKind,
    validate: bool,
    observer: Option<&'a mut dyn Observer>,
    series_every: Option<u32>,
    stats: bool,
    substrate: Option<Substrate>,
    mirror: Option<MirrorImpl>,
    chaos: FaultPlan,
    paranoia: u32,
}

impl fmt::Debug for Sim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("params", &self.params)
            .field("adversary", &self.adversary)
            .field("manager", &self.manager)
            .field("validate", &self.validate)
            .field("observer", &self.observer.is_some())
            .field("series_every", &self.series_every)
            .field("stats", &self.stats)
            .field("substrate", &self.substrate)
            .field("mirror", &self.mirror)
            .field("chaos", &self.chaos)
            .field("paranoia", &self.paranoia)
            .finish()
    }
}

impl<'a> Sim<'a> {
    /// Starts configuring a simulation at the given parameters.
    /// Defaults: the paper's full `P_F` against first-fit, no validation,
    /// no observability.
    pub fn new(params: Params) -> Self {
        Sim {
            params,
            adversary: Adversary::PF,
            manager: ManagerKind::FirstFit,
            validate: false,
            observer: None,
            series_every: None,
            stats: false,
            substrate: None,
            mirror: None,
            chaos: FaultPlan::empty(),
            paranoia: 0,
        }
    }

    /// Selects the adversary.
    pub fn adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = adversary;
        self
    }

    /// Selects the manager.
    pub fn manager(mut self, manager: ManagerKind) -> Self {
        self.manager = manager;
        self
    }

    /// Enables the adversary's internal invariant validation (slower;
    /// populates [`SimReport::violations`]).
    pub fn validate(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Attaches an external observer; it receives every event alongside
    /// any internal collectors.
    pub fn observe(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Collects a per-round [`TimeSeries`] sampled every `every` rounds
    /// (0 is treated as 1) into [`SimReport::series`].
    pub fn series(mut self, every: u32) -> Self {
        self.series_every = Some(every);
        self
    }

    /// Collects manager-side counters/histograms into
    /// [`SimReport::stats`].
    pub fn stats(mut self, stats: bool) -> Self {
        self.stats = stats;
        self
    }

    /// Pins the occupancy substrate for this run (otherwise the
    /// `PCB_SUBSTRATE` environment default applies). Both substrates
    /// produce identical reports; `Substrate::Reference` cross-checks a
    /// run against the `BTreeMap` oracle.
    pub fn substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = Some(substrate);
        self
    }

    /// Pins the manager-mirror implementation for this run (otherwise
    /// the `PCB_MIRROR` environment default applies). Both impls produce
    /// identical reports; `MirrorImpl::Reference` cross-checks a run
    /// against the seed BTree mirror.
    pub fn mirror(mut self, mirror: MirrorImpl) -> Self {
        self.mirror = Some(mirror);
        self
    }

    /// Attaches a deterministic fault schedule to the execution. The
    /// empty plan (the default) injects nothing at zero cost.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Cross-checks the manager's mirror against the space-map referee
    /// every `every` rounds (0, the default, disables paranoia mode).
    pub fn paranoia(mut self, every: u32) -> Self {
        self.paranoia = every;
        self
    }

    /// Applies a resolved [`RunConfig`](crate::RunConfig): pins the
    /// substrate and mirror and carries over the chaos/paranoia knobs (a
    /// `Sim` runs on one thread, so the config's thread count does not
    /// apply here).
    pub fn config(self, run: &crate::RunConfig) -> Self {
        self.substrate(run.substrate)
            .mirror(run.mirror)
            .chaos(run.chaos)
            .paranoia(run.paranoia)
    }

    /// Drives an execution to completion, attaching the configured
    /// collectors. With nothing attached this is the engine's zero-cost
    /// unobserved path.
    fn drive<P: Program, M: MemoryManager>(
        observer: Option<&mut dyn Observer>,
        series_every: Option<u32>,
        exec: &mut Execution<P, M>,
    ) -> Result<(pcb_heap::Report, Option<TimeSeries>), ExecutionError> {
        if observer.is_none() && series_every.is_none() {
            return Ok((exec.run()?, None));
        }
        let mut series = series_every.map(|k| TimeSeries::new().every(k));
        let mut bus = Observers::new();
        if let Some(s) = series.as_mut() {
            bus.attach(s);
        }
        if let Some(o) = observer {
            bus.attach(o);
        }
        let report = exec.run_observed(&mut bus)?;
        drop(bus);
        Ok((report, series))
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecutionError`]s (e.g. a manager that cannot serve a
    /// request) and rejects infeasible `P_F` parameter combinations.
    pub fn run(self) -> Result<SimReport, SimError> {
        let Sim {
            params,
            adversary,
            manager,
            validate,
            observer,
            series_every,
            stats,
            substrate,
            mirror,
            chaos,
            paranoia,
        } = self;
        let pin = |heap: Heap| match substrate {
            Some(s) => heap.with_substrate(s),
            None => heap,
        };
        let mirror = mirror.unwrap_or_else(MirrorImpl::from_env);
        let build = |manager: ManagerKind| match manager.try_build_with(&params, mirror) {
            Ok(built) => built,
            Err(e) => panic!("{e}"),
        };
        match adversary {
            Adversary::Pf(variant) => {
                let mut cfg = PfConfig::new(params.m(), params.log_n(), params.c())
                    .map_err(SimError::Infeasible)?
                    .with_variant(variant);
                if validate {
                    cfg = cfg.with_validation();
                }
                let rho = cfg.rho;
                let h_raw = cfg.h;
                let heap = pin(if manager.is_unbounded() {
                    Heap::unlimited_compaction()
                } else {
                    Heap::new(params.c())
                });
                let mut exec = Execution::new(heap, PfProgram::new(cfg), build(manager))
                    .with_chaos(chaos)
                    .with_paranoia(paranoia);
                if stats {
                    exec = exec.with_stats();
                }
                let (execution, series) =
                    Self::drive(observer, series_every, &mut exec).map_err(SimError::Execution)?;
                let program = exec.program();
                // The trivial factor 1 is always attainable, so the bound
                // the measurement is held to is the clamped value; the raw
                // h is preserved separately.
                let h = h_raw.max(1.0);
                let waste_over_bound = execution.waste_factor / h;
                let stage_words = [
                    program.s1_words(),
                    program.s2_words(),
                    program.q1_words(),
                    program.q2_words(),
                ];
                let final_potential = program.potential();
                let violations = program.violations().to_vec();
                Ok(SimReport {
                    h,
                    h_raw,
                    rho,
                    waste_over_bound,
                    stage_words,
                    final_potential,
                    violations,
                    execution,
                    series,
                    stats: exec.take_stats(),
                })
            }
            Adversary::Robson => {
                let program = RobsonProgram::new(params.m(), params.log_n());
                let heap = pin(if manager.is_unbounded() {
                    Heap::unlimited_compaction()
                } else if manager.is_compacting() {
                    Heap::new(params.c())
                } else {
                    Heap::non_moving()
                });
                let mut exec = Execution::new(heap, program, build(manager))
                    .with_chaos(chaos)
                    .with_paranoia(paranoia);
                if stats {
                    exec = exec.with_stats();
                }
                let (execution, series) =
                    Self::drive(observer, series_every, &mut exec).map_err(SimError::Execution)?;
                let bound = RobsonProgram::robson_lower_bound(params.m(), params.log_n())
                    / params.m() as f64;
                let h = bound.max(1.0);
                let waste_over_bound = execution.waste_factor / h;
                Ok(SimReport {
                    h,
                    h_raw: bound,
                    rho: 0,
                    waste_over_bound,
                    stage_words: [0; 4],
                    final_potential: None,
                    violations: Vec::new(),
                    execution,
                    series,
                    stats: exec.take_stats(),
                })
            }
        }
    }
}

/// Theorem 1's bound for quick reference alongside a simulation.
pub fn theoretical_bound(params: Params) -> f64 {
    thm1::factor(params)
}

/// Errors from the simulation harness.
#[derive(Debug)]
pub enum SimError {
    /// The `P_F` parameters admit no feasible `ρ`.
    Infeasible(String),
    /// The underlying execution failed.
    Execution(ExecutionError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Infeasible(msg) => write!(f, "infeasible parameters: {msg}"),
            SimError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Execution(e) => Some(e),
            SimError::Infeasible(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_heap::Recorder;

    fn small() -> Params {
        Params::new(1 << 14, 10, 20).unwrap()
    }

    fn sim(manager: ManagerKind) -> Sim<'static> {
        Sim::new(small()).manager(manager)
    }

    #[test]
    fn pf_run_produces_consistent_report() {
        let report = sim(ManagerKind::FirstFit).validate(true).run().unwrap();
        assert!(report.waste_over_bound >= 0.95);
        assert!(report.violations.is_empty());
        assert_eq!(
            report.execution.words_placed,
            report.stage_words[0] + report.stage_words[1]
        );
        assert!(report.final_potential.unwrap() <= report.execution.heap_size as i128);
        assert!(report.series.is_none());
        assert!(report.stats.is_none());
        let display = report.to_string();
        assert!(display.contains("pf vs first-fit"));
    }

    #[test]
    fn robson_run_produces_consistent_report() {
        let report = sim(ManagerKind::BestFit)
            .adversary(Adversary::Robson)
            .run()
            .unwrap();
        assert!(report.waste_over_bound >= 1.0);
        assert_eq!(report.rho, 0);
        assert_eq!(report.execution.objects_moved, 0);
        assert!(report.h_raw > 1.0, "Robson's bound is non-trivial here");
    }

    #[test]
    fn infeasible_parameters_are_reported() {
        // c = 2 admits no rho (needs 2^rho <= 3c/4 = 1.5 with rho >= 1).
        let p = Params::new(1 << 14, 10, 2).unwrap();
        assert!(matches!(Sim::new(p).run(), Err(SimError::Infeasible(_))));
    }

    #[test]
    fn compacting_managers_get_budgeted_heaps() {
        let report = sim(ManagerKind::PagesThm2).run().unwrap();
        assert!(report.execution.moved_fraction <= 1.0 / 20.0 + 1e-12);
    }

    #[test]
    fn full_compaction_beats_the_bound_because_it_is_not_c_partial() {
        // The paper's contrast: with unlimited compaction the overhead
        // factor is ~1 against the very same adversary that forces h > 1
        // on every c-partial manager.
        let report = sim(ManagerKind::FullCompaction).run().unwrap();
        assert!(
            report.execution.waste_factor <= 1.05,
            "full compaction wastes {}",
            report.execution.waste_factor
        );
        assert!(
            report.execution.moved_fraction > 1.0 / 20.0,
            "it must have exceeded the c-partial budget to do so"
        );
        assert!(
            report.h > 1.5,
            "the c-partial bound it beats is non-trivial"
        );
    }

    #[test]
    fn config_pins_the_substrate() {
        use crate::RunConfig;
        let via_config = sim(ManagerKind::FirstFit)
            .config(&RunConfig::default().with_substrate(pcb_heap::Substrate::Reference))
            .run()
            .unwrap();
        let pinned = sim(ManagerKind::FirstFit)
            .substrate(pcb_heap::Substrate::Reference)
            .run()
            .unwrap();
        assert_eq!(via_config.execution.heap_size, pinned.execution.heap_size);
    }

    #[test]
    fn raw_h_preserves_the_infeasible_vs_trivial_distinction() {
        // At these tiny parameters Theorem 1's factor dips below 1; the
        // clamped h must be exactly 1 while h_raw keeps the real value.
        let p = Params::new(70, 5, 1000).unwrap();
        let report = Sim::new(p).run().unwrap();
        assert!(report.h_raw < 1.0, "h_raw = {}", report.h_raw);
        assert_eq!(report.h, 1.0);
        assert!((report.waste_over_bound - report.execution.waste_factor).abs() < 1e-12);
    }

    #[test]
    fn observers_series_and_stats_attach_without_changing_results() {
        let baseline = sim(ManagerKind::FirstFit).run().unwrap();
        let mut recorder = Recorder::new();
        let observed = Sim::new(small())
            .manager(ManagerKind::FirstFit)
            .observe(&mut recorder)
            .series(1)
            .stats(true)
            .run()
            .unwrap();
        assert_eq!(baseline.execution.heap_size, observed.execution.heap_size);
        assert_eq!(
            baseline.execution.words_placed,
            observed.execution.words_placed
        );
        assert!(!recorder.is_empty());
        let series = observed.series.expect("series collected");
        assert_eq!(series.len(), observed.execution.rounds as usize);
        // HS is the peak of the span column.
        let peak = series.span().iter().copied().max().unwrap();
        assert_eq!(peak, observed.execution.heap_size);
        let stats = observed.stats.expect("stats collected");
        assert_eq!(
            stats.counter("freelist.placements"),
            observed.execution.objects_placed
        );
        assert!(stats.histogram("freelist.probes").is_some());
    }
}
