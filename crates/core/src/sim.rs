//! High-level simulation harness: one call to pit an adversary against a
//! manager and get a report comparing the measured heap against the
//! paper's bounds.

use core::fmt;

use pcb_adversary::{PfConfig, PfProgram, PfVariant, RobsonProgram};
use pcb_alloc::ManagerKind;
use pcb_heap::{Execution, ExecutionError, Heap};

use crate::bounds::thm1;
use crate::params::Params;

/// Which adversary to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// The paper's `P_F` (Algorithm 1) with the given variant.
    Pf(PfVariant),
    /// Robson's `P_R` (Algorithm 2); meaningful against non-moving
    /// managers.
    Robson,
}

impl Adversary {
    /// The paper's full `P_F`.
    pub const PF: Adversary = Adversary::Pf(PfVariant::FULL);
}

/// Outcome of one adversary-vs-manager simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The underlying execution report.
    pub execution: pcb_heap::Report,
    /// Theorem 1's waste factor for the parameters (1.0 when infeasible).
    pub h: f64,
    /// The density exponent `ρ` used (0 for Robson runs).
    pub rho: u32,
    /// Measured waste divided by the theoretical bound (≥ 1 certifies the
    /// lower bound empirically for this manager).
    pub waste_over_bound: f64,
    /// `s₁, s₂, q₁, q₂` (allocated / compacted words per stage; zeros for
    /// Robson runs).
    pub stage_words: [u64; 4],
    /// The final potential `u(t_finish)` in words, when tracked.
    pub final_potential: Option<i128>,
    /// Analysis violations recorded during a validated run.
    pub violations: Vec<String>,
}

impl pcb_json::ToJson for SimReport {
    fn to_json(&self) -> pcb_json::Json {
        use pcb_json::Json;
        Json::object([
            ("execution", self.execution.to_json()),
            ("h", Json::from(self.h)),
            ("rho", Json::from(self.rho)),
            ("waste_over_bound", Json::from(self.waste_over_bound)),
            (
                "stage_words",
                Json::array(self.stage_words.iter().map(|&w| Json::from(w))),
            ),
            (
                "final_potential",
                match self.final_potential {
                    Some(u) => Json::Int(u),
                    None => Json::Null,
                },
            ),
            (
                "violations",
                Json::array(self.violations.iter().map(|v| Json::from(v.as_str()))),
            ),
        ])
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: HS/M = {:.3} (bound h = {:.3}, ratio {:.3}), moved {:.4}",
            self.execution.program,
            self.execution.manager,
            self.execution.waste_factor,
            self.h,
            self.waste_over_bound,
            self.execution.moved_fraction
        )
    }
}

/// Runs an adversary against a manager at the given parameters.
///
/// ```
/// use partial_compaction::{sim, ManagerKind, Params};
/// let params = Params::new(1 << 13, 9, 15)?;
/// let report = sim::run(params, sim::Adversary::PF, ManagerKind::Tlsf, false)
///     .expect("runs");
/// assert!(report.waste_over_bound >= 0.9);
/// # Ok::<(), partial_compaction::ParamsError>(())
/// ```
///
/// # Errors
///
/// Propagates [`ExecutionError`]s (e.g. a manager that cannot serve a
/// request) and rejects infeasible `P_F` parameter combinations.
pub fn run(
    params: Params,
    adversary: Adversary,
    manager: ManagerKind,
    validate: bool,
) -> Result<SimReport, SimError> {
    match adversary {
        Adversary::Pf(variant) => {
            let mut cfg = PfConfig::new(params.m(), params.log_n(), params.c())
                .map_err(SimError::Infeasible)?
                .with_variant(variant);
            if validate {
                cfg = cfg.with_validation();
            }
            let rho = cfg.rho;
            let h = cfg.h;
            let heap = if manager.is_unbounded() {
                Heap::unlimited_compaction()
            } else {
                Heap::new(params.c())
            };
            let mut exec = Execution::new(
                heap,
                PfProgram::new(cfg),
                manager.build(params.c(), params.m(), params.log_n()),
            );
            let execution = exec.run().map_err(SimError::Execution)?;
            let program = exec.program();
            let waste_over_bound = execution.waste_factor / h.max(1.0);
            Ok(SimReport {
                h: h.max(1.0),
                rho,
                waste_over_bound,
                stage_words: [
                    program.s1_words(),
                    program.s2_words(),
                    program.q1_words(),
                    program.q2_words(),
                ],
                final_potential: program.potential(),
                violations: program.violations().to_vec(),
                execution,
            })
        }
        Adversary::Robson => {
            let program = RobsonProgram::new(params.m(), params.log_n());
            let heap = if manager.is_unbounded() {
                Heap::unlimited_compaction()
            } else if manager.is_compacting() {
                Heap::new(params.c())
            } else {
                Heap::non_moving()
            };
            let mut exec = Execution::new(
                heap,
                program,
                manager.build(params.c(), params.m(), params.log_n()),
            );
            let execution = exec.run().map_err(SimError::Execution)?;
            let bound =
                RobsonProgram::robson_lower_bound(params.m(), params.log_n()) / params.m() as f64;
            let waste_over_bound = execution.waste_factor / bound;
            Ok(SimReport {
                h: bound,
                rho: 0,
                waste_over_bound,
                stage_words: [0; 4],
                final_potential: None,
                violations: Vec::new(),
                execution,
            })
        }
    }
}

/// Theorem 1's bound for quick reference alongside a simulation.
pub fn theoretical_bound(params: Params) -> f64 {
    thm1::factor(params)
}

/// Errors from the simulation harness.
#[derive(Debug)]
pub enum SimError {
    /// The `P_F` parameters admit no feasible `ρ`.
    Infeasible(String),
    /// The underlying execution failed.
    Execution(ExecutionError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Infeasible(msg) => write!(f, "infeasible parameters: {msg}"),
            SimError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Execution(e) => Some(e),
            SimError::Infeasible(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params::new(1 << 14, 10, 20).unwrap()
    }

    #[test]
    fn pf_run_produces_consistent_report() {
        let report = run(small(), Adversary::PF, ManagerKind::FirstFit, true).unwrap();
        assert!(report.waste_over_bound >= 0.95);
        assert!(report.violations.is_empty());
        assert_eq!(
            report.execution.words_placed,
            report.stage_words[0] + report.stage_words[1]
        );
        assert!(report.final_potential.unwrap() <= report.execution.heap_size as i128);
        let display = report.to_string();
        assert!(display.contains("pf vs first-fit"));
    }

    #[test]
    fn robson_run_produces_consistent_report() {
        let report = run(small(), Adversary::Robson, ManagerKind::BestFit, false).unwrap();
        assert!(report.waste_over_bound >= 1.0);
        assert_eq!(report.rho, 0);
        assert_eq!(report.execution.objects_moved, 0);
    }

    #[test]
    fn infeasible_parameters_are_reported() {
        // c = 2 admits no rho (needs 2^rho <= 3c/4 = 1.5 with rho >= 1).
        let p = Params::new(1 << 14, 10, 2).unwrap();
        assert!(matches!(
            run(p, Adversary::PF, ManagerKind::FirstFit, false),
            Err(SimError::Infeasible(_))
        ));
    }

    #[test]
    fn compacting_managers_get_budgeted_heaps() {
        let report = run(small(), Adversary::PF, ManagerKind::PagesThm2, false).unwrap();
        assert!(report.execution.moved_fraction <= 1.0 / 20.0 + 1e-12);
    }

    #[test]
    fn full_compaction_beats_the_bound_because_it_is_not_c_partial() {
        // The paper's contrast: with unlimited compaction the overhead
        // factor is ~1 against the very same adversary that forces h > 1
        // on every c-partial manager.
        let report = run(small(), Adversary::PF, ManagerKind::FullCompaction, false).unwrap();
        assert!(
            report.execution.waste_factor <= 1.05,
            "full compaction wastes {}",
            report.execution.waste_factor
        );
        assert!(
            report.execution.moved_fraction > 1.0 / 20.0,
            "it must have exceeded the c-partial budget to do so"
        );
        assert!(
            report.h > 1.5,
            "the c-partial bound it beats is non-trivial"
        );
    }
}
