//! One-call reproduction: re-derive every checkable claim of the paper
//! and report pass/fail with the numbers side by side.
//!
//! `pcb reproduce` prints this table; CI asserts it stays green. Each
//! check is small enough to run in seconds (the analytic claims are
//! instant; the executable ones run at laptop scale).

use crate::bounds::{bp11, robson, thm1, thm2};
use crate::exhaustive::{self, SearchPolicy};
use crate::parallel;
use crate::params::Params;
use crate::sim;
use pcb_alloc::ManagerKind;

/// One reproduced claim.
#[derive(Debug, Clone)]
pub struct Check {
    /// Short id (experiment or paper locus).
    pub id: String,
    /// What the paper says.
    pub claim: String,
    /// What this repository measures.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub pass: bool,
}

impl pcb_json::ToJson for Check {
    fn to_json(&self) -> pcb_json::Json {
        use pcb_json::Json;
        Json::object([
            ("id", Json::from(self.id.as_str())),
            ("claim", Json::from(self.claim.as_str())),
            ("measured", Json::from(self.measured.as_str())),
            ("pass", Json::from(self.pass)),
        ])
    }
}

impl Check {
    fn new(id: &str, claim: &str, measured: String, pass: bool) -> Self {
        Check {
            id: id.to_owned(),
            claim: claim.to_owned(),
            measured,
            pass,
        }
    }
}

/// Runs every check. Analytic checks use the paper's exact parameters;
/// executable checks run at `M = 2^14..2^15` words.
pub fn all_checks() -> Vec<Check> {
    let _span = pcb_telemetry::span!("reproduce.all_checks");
    let mut checks = Vec::new();

    // ---- E1/E4: Theorem 1 at the paper's parameters. ----
    for (c, expect, tol) in [(10u64, 2.0, 0.05), (50, 3.15, 0.05), (100, 3.5, 0.06)] {
        let h = thm1::factor(Params::paper_example(c));
        checks.push(Check::new(
            &format!("fig1/c={c}"),
            &format!("waste factor ≈ {expect}x at c = {c} (M = 256 MB, n = 1 MB)"),
            format!("h = {h:.3}"),
            (h - expect).abs() < tol,
        ));
    }
    {
        let p = Params::paper_example(100);
        let mb = thm1::lower_bound(p) / (1 << 20) as f64;
        checks.push(Check::new(
            "s1/896MB",
            "a heap of size 896 MB must be used (c = 100)",
            format!("{mb:.0} MB"),
            (mb - 896.0).abs() < 16.0,
        ));
    }

    // ---- E1: prior lower bound trivial across Figure 1. ----
    {
        let trivial = (10..=100).all(|c| bp11::lower_factor(Params::paper_example(c)) == 1.0);
        checks.push(Check::new(
            "fig1/bp11",
            "[4] gives nothing but the trivial factor 1 for c in 10..100",
            format!("trivial everywhere: {trivial}"),
            trivial,
        ));
    }

    // ---- E2: Figure 2 monotone growth. ----
    {
        let rows = crate::figures::figure2();
        let monotone = rows.windows(2).all(|w| w[1].h >= w[0].h - 1e-9);
        checks.push(Check::new(
            "fig2",
            "lower bound grows with the max object size n (c = 100, M = 256n)",
            format!(
                "h: {:.2} (1KB) -> {:.2} (1GB), monotone: {monotone}",
                rows.first().unwrap().h,
                rows.last().unwrap().h
            ),
            monotone,
        ));
    }

    // ---- E3: Theorem 2 improvement range. ----
    {
        let improved = (20..=100).all(|c| {
            let p = Params::paper_example(c);
            thm2::factor(p).is_some_and(|t| t < thm2::prior_best_factor(p))
        });
        checks.push(Check::new(
            "fig3",
            "Theorem 2 improves on min((c+1)M, Robson-doubled) for c in 20..100",
            format!("improves everywhere: {improved}"),
            improved,
        ));
    }

    // ---- §2.2: Robson's bound value. ----
    {
        let p = Params::paper_example(10);
        let f = robson::factor_p2(p);
        checks.push(Check::new(
            "s2.2/robson",
            "Robson: M(log n/2 + 1) − n + 1 ≈ 11x at n = 1 MB",
            format!("{f:.3}x"),
            (f - 11.0).abs() < 0.01,
        ));
    }

    // ---- E5: the executable lower bound, all managers. ----
    {
        let params = Params::new(1 << 14, 10, 20).expect("valid");
        let h = thm1::factor(params);
        // The per-manager runs are independent; fan them across threads
        // and reduce in manager order so the summary is deterministic.
        let reports = parallel::par_map(&ManagerKind::ALL, |&kind| {
            sim::Sim::new(params)
                .adversary(sim::Adversary::PF)
                .manager(kind)
                .validate(true)
                .run()
                .expect("managers serve P_F")
        });
        let mut worst: (f64, &str) = (f64::INFINITY, "");
        let mut all_ok = true;
        for (kind, report) in ManagerKind::ALL.iter().zip(&reports) {
            let ratio = report.execution.waste_factor / h;
            if ratio < worst.0 {
                worst = (ratio, kind.name());
            }
            all_ok &= ratio >= 0.95 && report.violations.is_empty();
        }
        checks.push(Check::new(
            "E5",
            "P_F forces HS ≥ M·h on every c-partial manager (10 managers, c = 20)",
            format!("worst ratio {:.3} ({})", worst.0, worst.1),
            all_ok,
        ));
    }

    // ---- E6: Robson's adversary vs non-moving managers. ----
    {
        let params = Params::new(1 << 12, 6, 10).expect("valid");
        let mut all_ok = true;
        let mut worst = f64::INFINITY;
        for report in parallel::par_map(&ManagerKind::NON_MOVING, |&kind| {
            sim::Sim::new(params)
                .adversary(sim::Adversary::Robson)
                .manager(kind)
                .run()
                .expect("P_R runs")
        }) {
            worst = worst.min(report.waste_over_bound);
            all_ok &= report.waste_over_bound >= 1.0;
        }
        checks.push(Check::new(
            "E6",
            "P_R forces HS ≥ M(log n/2 + 1) − n + 1 on every non-moving manager",
            format!("worst ratio {worst:.3}"),
            all_ok,
        ));
    }

    // ---- E10: full compaction achieves factor ~1. ----
    {
        let params = Params::new(1 << 14, 10, 20).expect("valid");
        let report = sim::Sim::new(params)
            .manager(ManagerKind::FullCompaction)
            .run()
            .expect("full compactor runs");
        let ok = report.execution.waste_factor <= 1.05 && report.execution.moved_fraction > 0.05;
        checks.push(Check::new(
            "E10",
            "with unlimited compaction the overhead factor would have been 1",
            format!(
                "waste {:.3} while moving {:.1}% of allocations",
                report.execution.waste_factor,
                report.execution.moved_fraction * 100.0
            ),
            ok,
        ));
    }

    // ---- E11: exhaustive toy-scale check. ----
    {
        let p = Params::new(6, 1, 10).expect("valid");
        let wc = exhaustive::worst_case(p, SearchPolicy::FirstFit, 1_000_000);
        let bound = robson::bound_p2(p);
        checks.push(Check::new(
            "E11",
            "the true worst case over ALL tiny programs is ≥ Robson's formula",
            format!("brute force {} vs formula {bound:.0}", wc.heap_size),
            wc.heap_size as f64 >= bound.floor(),
        ));
    }

    // ---- E6 exactness: the free-list policies attain Robson's bound. ----
    {
        let params = Params::new(1 << 12, 6, 10).expect("valid");
        let report = sim::Sim::new(params)
            .adversary(sim::Adversary::Robson)
            .manager(ManagerKind::FirstFit)
            .run()
            .expect("P_R runs");
        let exact = (report.waste_over_bound - 1.0).abs() < 1e-9;
        checks.push(Check::new(
            "E6/exact",
            "Robson's bound is tight: first-fit attains it exactly",
            format!("ratio {:.6}", report.waste_over_bound),
            exact,
        ));
    }

    // ---- E9: benchmarks sit well below the worst case. ----
    {
        use pcb_heap::{Execution, Heap};
        use pcb_workload::{ChurnConfig, ChurnWorkload};
        let (m, log_n, c) = (1u64 << 14, 8u32, 20u64);
        let params = Params::new(m, log_n, c).expect("valid");
        let h = thm1::factor(params);
        let cfg = ChurnConfig::typical(m, log_n);
        let mut exec = Execution::new(
            Heap::non_moving(),
            ChurnWorkload::new(cfg),
            ManagerKind::FirstFit.build(&params),
        );
        let churn = exec.run().expect("churn runs").waste_factor;
        let pf = sim::Sim::new(params)
            .manager(ManagerKind::FirstFit)
            .run()
            .expect("P_F runs")
            .execution
            .waste_factor;
        let ok = churn < 0.75 * h && pf >= h;
        checks.push(Check::new(
            "E9",
            "the bounds are worst-case: benchmarks do much better than P_F",
            format!("churn {churn:.2} < h {h:.2} <= P_F {pf:.2}"),
            ok,
        ));
    }

    // ---- E12: observability is free of observer effects. ----
    {
        let params = Params::new(1 << 13, 9, 20).expect("valid");
        let plain = sim::Sim::new(params)
            .manager(ManagerKind::FirstFit)
            .run()
            .expect("P_F runs");
        let watched = sim::Sim::new(params)
            .manager(ManagerKind::FirstFit)
            .series(1)
            .stats(true)
            .run()
            .expect("P_F runs observed");
        let series = watched.series.as_ref().expect("series collected");
        let peak = series.span().iter().copied().max().unwrap_or(0);
        let ok = plain.execution.heap_size == watched.execution.heap_size
            && plain.execution.words_placed == watched.execution.words_placed
            && peak == watched.execution.heap_size
            && series.len() == watched.execution.rounds as usize;
        checks.push(Check::new(
            "E12",
            "attaching per-round series + manager stats changes no result",
            format!(
                "HS {} = {} (peak of {} samples)",
                plain.execution.heap_size,
                watched.execution.heap_size,
                series.len()
            ),
            ok,
        ));
    }

    // ---- Consistency: lower never crosses upper. ----
    {
        let ok = (11..=100).all(|c| {
            let p = Params::paper_example(c);
            thm2::factor(p).is_none_or(|t| thm1::factor(p) <= t)
        });
        checks.push(Check::new(
            "sanity",
            "the lower bound never crosses the upper bound",
            format!("consistent: {ok}"),
            ok,
        ));
    }

    checks
}

/// Renders the checks as an aligned text table.
pub fn render_table(checks: &[Check]) -> String {
    let mut out = String::new();
    let id_w = checks.iter().map(|c| c.id.len()).max().unwrap_or(4).max(4);
    for check in checks {
        out.push_str(&format!(
            "{} {:id_w$}  {}\n{:id_w$}  {}  -> {}\n",
            if check.pass { "PASS" } else { "FAIL" },
            check.id,
            check.claim,
            "",
            " ".repeat(4),
            check.measured,
        ));
    }
    let passed = checks.iter().filter(|c| c.pass).count();
    out.push_str(&format!("\n{passed}/{} checks pass\n", checks.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reproduction_check_passes() {
        let checks = all_checks();
        assert!(checks.len() >= 10);
        for check in &checks {
            assert!(
                check.pass,
                "{}: {} -> {}",
                check.id, check.claim, check.measured
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let checks = vec![
            Check::new("a", "claim", "measured".into(), true),
            Check::new("b", "other", "nope".into(), false),
        ];
        let table = render_table(&checks);
        assert!(table.contains("PASS a"));
        assert!(table.contains("FAIL b"));
        assert!(table.contains("1/2 checks pass"));
    }
}
