//! Typed run configuration, resolved once at the process boundary.
//!
//! Historically each module re-read its own environment variables —
//! `PCB_THREADS` in [`parallel`](crate::parallel), `PCB_SUBSTRATE` in the
//! heap's `SpaceMap` — which made the effective configuration of a run
//! impossible to see in one place and easy to desynchronize (a test that
//! sets a variable races every other test in the binary). [`RunConfig`]
//! inverts that: the CLI (or a test) resolves the environment **once**,
//! optionally overrides fields from flags, and threads the resulting
//! value through `Sim`, the fleet simulator, and the exhaustive search.
//! The environment variables remain the fallback for code that never
//! sees a `RunConfig` (library users calling `par_map` directly), so the
//! old behaviour is unchanged where the new API is not used.

use core::fmt;

use pcb_alloc::MirrorImpl;
use pcb_chaos::FaultPlan;
use pcb_heap::Substrate;

/// The resolved knobs of one run: worker threads, occupancy substrate,
/// and telemetry collection.
///
/// Construct with [`RunConfig::from_env`] at the process boundary, then
/// override fields from CLI flags; every field is plain data, so the
/// value is `Copy` and freely shareable across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Worker threads for [`par_map_threads`](crate::parallel::par_map_threads)
    /// fan-outs (≥ 1).
    pub threads: usize,
    /// Occupancy substrate for every heap the run creates.
    pub substrate: Substrate,
    /// Manager-mirror implementation for every manager the run builds
    /// (the manager-side analogue of the substrate knob; reports are
    /// byte-identical across impls).
    pub mirror: MirrorImpl,
    /// Whether telemetry span collection is on.
    pub telemetry: bool,
    /// Deterministic fault schedule threaded into every execution the
    /// run creates; empty (the default) injects nothing at zero cost.
    pub chaos: FaultPlan,
    /// Cross-check manager mirrors against the ground truth every this
    /// many rounds; 0 (the default) disables paranoia mode.
    pub paranoia: u32,
    /// Whether the `pcb-metrics` registry collects and reports embed a
    /// [`MetricsSnapshot`](pcb_metrics::MetricsSnapshot); off (the
    /// default) costs one relaxed load per recording site.
    pub metrics: bool,
}

impl RunConfig {
    /// Resolves the configuration from the environment: `PCB_THREADS`
    /// (falling back to the machine's available parallelism),
    /// `PCB_SUBSTRATE` (falling back to the bitmap substrate),
    /// `PCB_MIRROR` (falling back to the indexed mirror), and the
    /// current telemetry state.
    pub fn from_env() -> Self {
        RunConfig {
            threads: crate::parallel::thread_count(),
            substrate: Substrate::from_env(),
            mirror: MirrorImpl::from_env(),
            telemetry: pcb_telemetry::enabled(),
            chaos: FaultPlan::empty(),
            paranoia: 0,
            metrics: pcb_metrics::enabled(),
        }
    }

    /// Overrides the thread count (values < 1 are clamped to 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the substrate.
    pub fn with_substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }

    /// Overrides the manager-mirror implementation.
    pub fn with_mirror(mut self, mirror: MirrorImpl) -> Self {
        self.mirror = mirror;
        self
    }

    /// Overrides the telemetry toggle.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the fault schedule.
    pub fn with_chaos(mut self, chaos: FaultPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// Overrides the paranoia cadence (0 disables).
    pub fn with_paranoia(mut self, paranoia: u32) -> Self {
        self.paranoia = paranoia;
        self
    }

    /// Overrides the metrics toggle.
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Applies the process-global side of the configuration (the
    /// telemetry and metrics registries are process singletons; threads
    /// and substrate are threaded explicitly and need no global
    /// application).
    pub fn apply(&self) {
        if self.telemetry {
            pcb_telemetry::enable();
        } else {
            pcb_telemetry::disable();
        }
        if self.metrics {
            pcb_metrics::enable();
        } else {
            pcb_metrics::disable();
        }
    }
}

impl Default for RunConfig {
    /// Single-threaded, default substrate, telemetry off — the fully
    /// deterministic baseline used by tests and oracles.
    fn default() -> Self {
        RunConfig {
            threads: 1,
            substrate: Substrate::default(),
            mirror: MirrorImpl::default(),
            telemetry: false,
            chaos: FaultPlan::empty(),
            paranoia: 0,
            metrics: false,
        }
    }
}

impl fmt::Display for RunConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "threads={} substrate={} telemetry={}",
            self.threads,
            self.substrate,
            if self.telemetry { "on" } else { "off" }
        )?;
        // The mirror, chaos and metrics knobs print only when set, so the
        // common display stays exactly as it always was.
        if self.mirror != MirrorImpl::default() {
            write!(f, " mirror={}", self.mirror)?;
        }
        if !self.chaos.is_empty() {
            write!(f, " chaos={}", self.chaos)?;
        }
        if self.paranoia != 0 {
            write!(f, " paranoia={}", self.paranoia)?;
        }
        if self.metrics {
            write!(f, " metrics=on")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_deterministic_baseline() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.substrate, Substrate::Bitmap);
        assert!(!cfg.telemetry);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = RunConfig::default()
            .with_threads(4)
            .with_substrate(Substrate::Reference)
            .with_telemetry(true);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.substrate, Substrate::Reference);
        assert!(cfg.telemetry);
        assert_eq!(RunConfig::default().with_threads(0).threads, 1);
    }

    #[test]
    fn from_env_produces_positive_threads() {
        // Whatever the ambient environment, the resolved value is usable.
        let cfg = RunConfig::from_env();
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn display_is_compact() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.to_string(), "threads=1 substrate=bitmap telemetry=off");
    }

    #[test]
    fn display_names_the_mirror_knob_only_when_non_default() {
        let cfg = RunConfig::default().with_mirror(MirrorImpl::Reference);
        assert_eq!(
            cfg.to_string(),
            "threads=1 substrate=bitmap telemetry=off mirror=reference"
        );
    }

    #[test]
    fn display_names_the_metrics_knob_only_when_on() {
        let cfg = RunConfig::default().with_metrics(true);
        assert_eq!(
            cfg.to_string(),
            "threads=1 substrate=bitmap telemetry=off metrics=on"
        );
    }

    #[test]
    fn display_names_the_chaos_knobs_only_when_set() {
        use pcb_chaos::FaultSite;
        let cfg = RunConfig::default()
            .with_chaos(FaultPlan::new(7).with_rate(FaultSite::TenantPanic, 50))
            .with_paranoia(8);
        assert_eq!(
            cfg.to_string(),
            "threads=1 substrate=bitmap telemetry=off chaos=seed=7,tenant-panic=50 paranoia=8"
        );
    }
}
