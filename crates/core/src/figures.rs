//! The data series behind every figure in the paper's evaluation.
//!
//! The paper's figures are analytic (they plot the bound formulas, not
//! measurements); these functions regenerate the exact series at the
//! paper's parameters, fanning the grid points across threads via
//! [`parallel::par_map`] (results stay in sweep order). The `pcb-bench`
//! crate prints them as CSV and times them in its benches.

use pcb_json::{Json, ToJson};

use crate::bounds::{bp11, robson, thm1, thm2};
use crate::parallel;
use crate::params::Params;
use crate::sim::{Adversary, Sim, SimError};
use pcb_alloc::ManagerKind;
use pcb_heap::TimeSeries;

/// One point of Figure 1: the lower-bound waste factor vs. `c`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Compaction bound.
    pub c: u64,
    /// Theorem 1's waste factor `h` (ρ optimized), clamped at 1.
    pub h: f64,
    /// The optimizing density exponent `ρ`.
    pub rho: u32,
    /// The \[4\] lower bound at the same parameters (clamped at 1).
    pub bp11: f64,
}

/// Figure 1: lower bound on the waste factor for `M = 256 MB`,
/// `n = 1 MB` (words: `2^28`, `2^20`), `c = 10..=100`.
pub fn figure1() -> Vec<Fig1Row> {
    let _span = pcb_telemetry::span!("figures.figure1");
    let cs: Vec<u64> = (10..=100).collect();
    parallel::par_map(&cs, |&c| {
        let p = Params::paper_example(c);
        let (rho, _) = thm1::optimal(p).expect("feasible at paper parameters");
        Fig1Row {
            c,
            h: thm1::factor(p),
            rho,
            bp11: bp11::lower_factor(p),
        }
    })
}

impl ToJson for Fig1Row {
    fn to_json(&self) -> Json {
        Json::object([
            ("c", Json::from(self.c)),
            ("h", Json::from(self.h)),
            ("rho", Json::from(self.rho)),
            ("bp11", Json::from(self.bp11)),
        ])
    }
}

/// One point of Figure 2: the lower-bound waste factor vs. `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// `log₂ n` (n in words; the paper sweeps 1 KB to 1 GB).
    pub log_n: u32,
    /// Live bound `M = 256·n`.
    pub m: u64,
    /// Theorem 1's waste factor, clamped at 1.
    pub h: f64,
    /// The optimizing `ρ`.
    pub rho: u32,
}

/// Figure 2: lower bound on the waste factor as a function of `n`
/// (`c = 100`, `M = 256·n`, `n = 2^10 ..= 2^30`).
pub fn figure2() -> Vec<Fig2Row> {
    let _span = pcb_telemetry::span!("figures.figure2");
    let log_ns: Vec<u32> = (10..=30).collect();
    parallel::par_map(&log_ns, |&log_n| {
        let p = Params::new(256u64 << log_n, log_n, 100).expect("valid sweep point");
        let (rho, _) = thm1::optimal(p).expect("feasible across the sweep");
        Fig2Row {
            log_n,
            m: p.m(),
            h: thm1::factor(p),
            rho,
        }
    })
}

impl ToJson for Fig2Row {
    fn to_json(&self) -> Json {
        Json::object([
            ("log_n", Json::from(self.log_n)),
            ("m", Json::from(self.m)),
            ("h", Json::from(self.h)),
            ("rho", Json::from(self.rho)),
        ])
    }
}

/// One point of Figure 3: upper-bound waste factors vs. `c`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Compaction bound.
    pub c: u64,
    /// Theorem 2's waste factor (`None` below its `c > ½ log n` threshold).
    pub thm2: Option<f64>,
    /// The `(c+1)` factor of \[4\].
    pub bp11_upper: f64,
    /// Robson's doubled factor (compaction-free, arbitrary sizes).
    pub robson_doubled: f64,
    /// The prior best: `min(bp11_upper, robson_doubled)`.
    pub prior_best: f64,
}

/// Figure 3: upper bound on the waste factor for the Figure-1 parameters,
/// `c = 10..=100`.
pub fn figure3() -> Vec<Fig3Row> {
    let _span = pcb_telemetry::span!("figures.figure3");
    let cs: Vec<u64> = (10..=100).collect();
    parallel::par_map(&cs, |&c| {
        let p = Params::paper_example(c);
        Fig3Row {
            c,
            thm2: thm2::factor(p),
            bp11_upper: bp11::upper_factor(p),
            robson_doubled: robson::factor_arbitrary(p),
            prior_best: thm2::prior_best_factor(p),
        }
    })
}

impl ToJson for Fig3Row {
    fn to_json(&self) -> Json {
        Json::object([
            ("c", Json::from(self.c)),
            ("thm2", self.thm2.map_or(Json::Null, Json::from)),
            ("bp11_upper", Json::from(self.bp11_upper)),
            ("robson_doubled", Json::from(self.robson_doubled)),
            ("prior_best", Json::from(self.prior_best)),
        ])
    }
}

/// The per-round profile of one adversarial run — the empirical companion
/// to the analytic figures. Where Figures 1–3 plot the *endpoint* bound,
/// this returns the whole trajectory (live words, span, hole structure,
/// budget allowance per round) so the build-up the proof describes can be
/// plotted directly; `to_csv`/`to_json` on the result are plot-ready.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying run.
pub fn round_profile(
    params: Params,
    adversary: Adversary,
    manager: ManagerKind,
    every: u32,
) -> Result<TimeSeries, SimError> {
    let report = Sim::new(params)
        .adversary(adversary)
        .manager(manager)
        .series(every)
        .run()?;
    Ok(report
        .series
        .expect("series requested, so the report carries one"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let rows = figure1();
        assert_eq!(rows.len(), 91);
        // Monotone non-decreasing in c; \[4\] flat at the trivial 1.
        for pair in rows.windows(2) {
            assert!(pair[1].h >= pair[0].h - 1e-9, "h dips at c={}", pair[1].c);
        }
        assert!(rows.iter().all(|r| r.bp11 == 1.0));
        // The paper's three quoted points.
        let at = |c: u64| rows.iter().find(|r| r.c == c).unwrap().h;
        assert!((at(10) - 2.0).abs() < 0.05);
        assert!((at(50) - 3.15).abs() < 0.05);
        assert!((at(100) - 3.5).abs() < 0.06);
    }

    #[test]
    fn figure2_shape() {
        let rows = figure2();
        assert_eq!(rows.len(), 21);
        for pair in rows.windows(2) {
            assert!(
                pair[1].h >= pair[0].h - 1e-9,
                "h dips at log n = {}",
                pair[1].log_n
            );
        }
        // Small n: modest bound; large n: beyond 4x (the paper's Figure 2
        // spans roughly 2.5..4+ over 1KB..1GB).
        assert!(rows.first().unwrap().h < 3.0);
        assert!(rows.last().unwrap().h > 4.0);
    }

    #[test]
    fn round_profile_traces_the_buildup() {
        let p = Params::new(1 << 12, 8, 20).unwrap();
        let series = round_profile(p, Adversary::PF, ManagerKind::FirstFit, 1).unwrap();
        assert!(!series.is_empty());
        // The adversary's whole point: the span ends far above the live
        // data it retains.
        let last = series.len() - 1;
        assert!(series.span()[last] > series.live_words()[last]);
        // CSV is plot-ready: header + one line per sample.
        assert_eq!(series.to_csv().lines().count(), series.len() + 1);
    }

    #[test]
    fn figure3_shape() {
        let rows = figure3();
        assert_eq!(rows.len(), 91);
        for r in &rows {
            assert_eq!(
                r.prior_best,
                r.bp11_upper.min(r.robson_doubled),
                "c={}",
                r.c
            );
            if r.c >= 20 {
                let t = r.thm2.expect("applies for c >= 11");
                assert!(t < r.prior_best, "c={}: no improvement", r.c);
            }
        }
    }
}
