//! Fleet-scale simulation: 10⁵–10⁷ independent tenant heaps, streamed.
//!
//! The paper's bounds are per-heap; the production question is what a
//! *population* of heaps looks like — millions of small arenas, each
//! tracking its own `HS/M` against the Theorem 1/2 curves (the scale at
//! which Mesh and the SWCL incremental-compaction work evaluate). This
//! module runs that population:
//!
//! * tenants are split into **contiguous shards**; each shard runs its
//!   tenants in index order and folds every per-tenant [`HeapSummary`]
//!   into a fixed-size [`FleetAccumulator`] — histograms and rollups,
//!   never per-tenant traces — so resident aggregation state is
//!   O(shards), not O(tenants);
//! * shards fan out across threads via
//!   [`par_map_threads`](crate::parallel::par_map_threads) and merge in
//!   shard order, so the aggregate report is **byte-identical for any
//!   thread count**: the shard count and every shard boundary come from
//!   [`FleetConfig`], never from the machine;
//! * each tenant's program, size and seed are pure functions of
//!   `(fleet seed, tenant index)` via the
//!   [`WorkloadMixer`], so any shard can
//!   materialize any tenant without coordination.
//!
//! The aggregate [`FleetReport`] carries the fleet-wide p50/p99/max
//! waste factor, per-family breakdowns, a size-bucket × waste heat-map
//! rollup, and — under fault injection — the quarantined
//! [`TenantFailure`]s.
//!
//! # Fault isolation
//!
//! Every tenant executes behind a `catch_unwind` barrier: a panicking
//! tenant program (including one poisoned by the chaos `tenant-panic`
//! fault) or a typed engine failure is folded into the aggregate as a
//! [`TenantFailure`] instead of killing the shard. Failure counts are
//! exact; the retained failure records are capped so the aggregation
//! state stays O(shards). Because the panic site and round are pure
//! functions of `(chaos seed, tenant index)`, the failure section is
//! byte-identical for any thread count and substrate.
//!
//! # Checkpoint/resume
//!
//! [`run_checkpointed`] processes shards in chunks and serializes the
//! merged accumulator to a pcb-json checkpoint after each chunk (see
//! [`checkpoint`]); a resumed run continues from the last completed
//! chunk and produces a byte-identical report.

use core::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use pcb_alloc::ManagerKind;
use pcb_chaos::FaultSite;
use pcb_heap::{Execution, ExecutionError, Heap, HeapSummary, Program};
use pcb_json::{Json, ToJson};
use pcb_metrics::MetricsSnapshot;
use pcb_workload::{MixerConfig, PanicProgram, TenantSpec, WorkloadMixer};

use crate::bounds;
use crate::config::RunConfig;
use crate::parallel;
use crate::params::Params;
use crate::progress::{Heartbeat, ProgressOptions};

pub mod checkpoint;

pub use checkpoint::{CheckpointOptions, FleetOutcome};

/// Waste-factor histogram buckets: 256 buckets of width 1/32 covering
/// `[0, 8)`; the last bucket absorbs everything above.
const WASTE_BUCKETS: usize = 256;
/// Histogram buckets per unit of waste factor.
const WASTE_SCALE: f64 = 32.0;
/// Heat-map columns: 32 columns of width 1/4 covering the same `[0, 8)`.
const HEAT_COLS: usize = 32;
/// Heat-map glyphs from empty to hottest (the repo's standard ramp).
const GLYPHS: [char; 5] = ['_', '.', ':', '+', '#'];

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of tenant heaps.
    pub tenants: u64,
    /// Number of aggregation shards. Fixed by configuration — never by
    /// the thread count — because the shard boundaries are part of the
    /// deterministic result. More shards than tenants are clamped.
    pub shards: usize,
    /// The memory manager every tenant runs against.
    pub manager: ManagerKind,
    /// Per-tenant workload assignment.
    pub mixer: MixerConfig,
}

impl Default for FleetConfig {
    /// 100 000 tenants in 256 shards against first-fit, default mix.
    fn default() -> Self {
        FleetConfig {
            tenants: 100_000,
            shards: 256,
            manager: ManagerKind::FirstFit,
            mixer: MixerConfig::default(),
        }
    }
}

/// Errors from a fleet run.
#[derive(Debug)]
pub enum FleetError {
    /// The configuration is degenerate (zero tenants, bad mixer, invalid
    /// per-tenant parameters).
    Config(String),
    /// One tenant's execution failed. Since fault isolation landed, a
    /// failing tenant is quarantined as a [`TenantFailure`] instead, so
    /// `run` no longer returns this; it remains for callers that drive
    /// `run_tenant`-level APIs directly.
    Execution {
        /// The failing tenant's index.
        tenant: u64,
        /// The underlying engine error.
        error: ExecutionError,
    },
    /// A checkpoint could not be written, read, or did not match the run.
    Checkpoint(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet configuration: {msg}"),
            FleetError::Execution { tenant, error } => {
                write!(f, "tenant {tenant} failed: {error}")
            }
            FleetError::Checkpoint(msg) => write!(f, "fleet checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Execution { error, .. } => Some(error),
            FleetError::Config(_) | FleetError::Checkpoint(_) => None,
        }
    }
}

/// Retained failure records are capped at this many (counts stay exact),
/// so a high-fault-rate fleet cannot grow the aggregation state beyond
/// O(shards).
pub const MAX_FAILURE_RECORDS: usize = 32;

/// Injected panic messages and engine errors are truncated to this many
/// characters in a retained record.
const MAX_FAILURE_DETAIL: usize = 160;

/// Why a quarantined tenant failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The tenant's program or manager panicked; carries the (truncated)
    /// panic message.
    Panic(String),
    /// The engine returned a typed [`ExecutionError`]; carries its
    /// (truncated) rendering.
    Engine(String),
}

impl FailureCause {
    /// Stable class name: `"panic"` or `"engine"`.
    pub fn name(&self) -> &'static str {
        match self {
            FailureCause::Panic(_) => "panic",
            FailureCause::Engine(_) => "engine",
        }
    }

    /// The captured detail message.
    pub fn detail(&self) -> &str {
        match self {
            FailureCause::Panic(msg) | FailureCause::Engine(msg) => msg,
        }
    }
}

/// One quarantined tenant failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantFailure {
    /// The failing tenant's index.
    pub tenant: u64,
    /// The tenant's workload family name.
    pub family: String,
    /// What happened.
    pub cause: FailureCause,
}

impl ToJson for TenantFailure {
    fn to_json(&self) -> Json {
        Json::object([
            ("cause", Json::from(self.cause.name())),
            ("detail", Json::from(self.cause.detail())),
            ("family", Json::from(self.family.as_str())),
            ("tenant", Json::from(self.tenant)),
        ])
    }
}

/// Streaming aggregation state: everything the fleet retains about the
/// tenants it has seen. Fixed-size (histograms and counters only), so a
/// shard's memory is independent of how many tenants it processes.
#[derive(Debug, Clone)]
pub struct FleetAccumulator {
    /// Tenants folded in.
    pub tenants: u64,
    /// Waste-factor histogram (bucket width 1/32, domain `[0, 8)`).
    pub waste_hist: Vec<u64>,
    /// Sum of waste factors (for the mean).
    pub waste_sum: f64,
    /// The maximum waste factor seen.
    pub max_waste: f64,
    /// The first (lowest-index) tenant attaining [`max_waste`](Self::max_waste).
    pub max_tenant: u64,
    /// Tenants per workload family.
    pub kind_counts: Vec<u64>,
    /// Waste-factor sum per workload family.
    pub kind_waste_sum: Vec<f64>,
    /// Heat map: `size_buckets × HEAT_COLS` tenant counts (row = tenant
    /// size bucket, column = waste factor in quarter-unit steps).
    pub heat: Vec<u64>,
    /// External-fragmentation words per workload family (hole words
    /// inside the span at peak `HS`).
    pub kind_external: Vec<u64>,
    /// Ghost words per workload family (moved-then-immediately-freed,
    /// the `P_F` discipline).
    pub kind_ghost: Vec<u64>,
    /// Internal-fragmentation words per workload family (manager-held
    /// words no request can use, e.g. empty page slots).
    pub kind_internal: Vec<u64>,
    /// Waste-factor sum per size bucket (pairs with
    /// [`bucket_tenants`](Self::bucket_tenants) for the per-bucket mean
    /// compared against the Theorem 1 curve).
    pub bucket_waste_sum: Vec<f64>,
    /// Tenants per size bucket.
    pub bucket_tenants: Vec<u64>,
    /// The fleet's metric plane: a [`MetricsSnapshot`] folded per shard
    /// and merged in shard order. Empty unless
    /// [`RunConfig::metrics`](crate::RunConfig) is on.
    pub metrics: MetricsSnapshot,
    /// Total objects placed across the fleet.
    pub objects_placed: u64,
    /// Total words allocated across the fleet.
    pub words_placed: u64,
    /// Total words moved (compaction work) across the fleet.
    pub words_moved: u64,
    /// Tenants that failed and were quarantined (exact count).
    pub failed_tenants: u64,
    /// Quarantined failures that were panics (exact count).
    pub panics: u64,
    /// Quarantined failures that were typed engine errors (exact count).
    pub engine_failures: u64,
    /// The first [`MAX_FAILURE_RECORDS`] failures in tenant order.
    pub failures: Vec<TenantFailure>,
}

impl FleetAccumulator {
    fn new(kinds: usize, size_buckets: usize) -> Self {
        FleetAccumulator {
            tenants: 0,
            waste_hist: vec![0; WASTE_BUCKETS],
            waste_sum: 0.0,
            max_waste: f64::NEG_INFINITY,
            max_tenant: 0,
            kind_counts: vec![0; kinds],
            kind_waste_sum: vec![0.0; kinds],
            heat: vec![0; size_buckets * HEAT_COLS],
            kind_external: vec![0; kinds],
            kind_ghost: vec![0; kinds],
            kind_internal: vec![0; kinds],
            bucket_waste_sum: vec![0.0; size_buckets],
            bucket_tenants: vec![0; size_buckets],
            metrics: MetricsSnapshot::new(),
            objects_placed: 0,
            words_placed: 0,
            words_moved: 0,
            failed_tenants: 0,
            panics: 0,
            engine_failures: 0,
            failures: Vec::new(),
        }
    }

    /// Folds one tenant's summary in. Tenants must be recorded in index
    /// order within a shard (the merge relies on it for the max
    /// tie-break).
    fn record(&mut self, spec: &TenantSpec, summary: &HeapSummary) {
        self.tenants += 1;
        let waste = summary.waste_factor;
        let bucket = ((waste * WASTE_SCALE) as usize).min(WASTE_BUCKETS - 1);
        self.waste_hist[bucket] += 1;
        self.waste_sum += waste;
        if waste > self.max_waste {
            self.max_waste = waste;
            self.max_tenant = spec.index;
        }
        self.kind_counts[spec.kind] += 1;
        self.kind_waste_sum[spec.kind] += waste;
        let col = ((waste * HEAT_COLS as f64 / 8.0) as usize).min(HEAT_COLS - 1);
        self.heat[spec.size_rank * HEAT_COLS + col] += 1;
        self.kind_external[spec.kind] += summary.external_waste;
        self.kind_ghost[spec.kind] += summary.ghost_words;
        self.kind_internal[spec.kind] += summary.internal_waste;
        self.bucket_waste_sum[spec.size_rank] += waste;
        self.bucket_tenants[spec.size_rank] += 1;
        self.objects_placed += summary.objects_placed;
        self.words_placed += summary.words_placed;
        self.words_moved += summary.words_moved;
    }

    /// Folds one tenant into the metric plane. Separate from
    /// [`record`](Self::record) (and called only when metrics are on) so
    /// the metrics-off fleet
    /// does no string work per tenant. Every value is an integer —
    /// counter sums, gauge maxes, histogram bucket counts — so the
    /// merged snapshot is byte-identical for any thread count.
    fn record_metrics(&mut self, family: &str, summary: &HeapSummary) {
        let m = &mut self.metrics;
        m.add_counter(format!("fleet.tenants.{family}"), 1);
        m.add_counter("fleet.objects_placed", summary.objects_placed);
        m.add_counter("fleet.words_placed", summary.words_placed);
        m.add_counter("fleet.words_moved", summary.words_moved);
        m.add_counter("waste.external_words", summary.external_waste);
        m.add_counter("waste.ghost_words", summary.ghost_words);
        m.add_counter("waste.internal_words", summary.internal_waste);
        // Waste factors enter the integer-only plane in milli-units.
        let waste_milli = (summary.waste_factor * 1000.0).max(0.0) as u64;
        m.record_gauge_max("fleet.max_waste_milli", waste_milli);
        m.observe("fleet.waste_milli", waste_milli);
        m.observe("fleet.heap_size_words", summary.heap_size);
    }

    /// Quarantines one tenant failure. Counts are always exact; the
    /// record itself is retained only while the cap has room, which —
    /// with tenants recorded in index order and shards merged in range
    /// order — keeps exactly the lowest-index failures.
    fn record_failure(&mut self, tenant: u64, family: &str, cause: FailureCause) {
        self.failed_tenants += 1;
        match cause {
            FailureCause::Panic(_) => self.panics += 1,
            FailureCause::Engine(_) => self.engine_failures += 1,
        }
        if self.failures.len() < MAX_FAILURE_RECORDS {
            self.failures.push(TenantFailure {
                tenant,
                family: family.to_string(),
                cause,
            });
        }
    }

    /// Merges a later shard's accumulator into this one. Shards must be
    /// merged in shard (= tenant-range) order; the strict `>` keeps the
    /// lowest-index tenant among equal maxima.
    fn merge(&mut self, other: &FleetAccumulator) {
        self.tenants += other.tenants;
        for (a, b) in self.waste_hist.iter_mut().zip(&other.waste_hist) {
            *a += b;
        }
        self.waste_sum += other.waste_sum;
        if other.max_waste > self.max_waste {
            self.max_waste = other.max_waste;
            self.max_tenant = other.max_tenant;
        }
        for (a, b) in self.kind_counts.iter_mut().zip(&other.kind_counts) {
            *a += b;
        }
        for (a, b) in self.kind_waste_sum.iter_mut().zip(&other.kind_waste_sum) {
            *a += b;
        }
        for (a, b) in self.heat.iter_mut().zip(&other.heat) {
            *a += b;
        }
        for (a, b) in self.kind_external.iter_mut().zip(&other.kind_external) {
            *a += b;
        }
        for (a, b) in self.kind_ghost.iter_mut().zip(&other.kind_ghost) {
            *a += b;
        }
        for (a, b) in self.kind_internal.iter_mut().zip(&other.kind_internal) {
            *a += b;
        }
        for (a, b) in self
            .bucket_waste_sum
            .iter_mut()
            .zip(&other.bucket_waste_sum)
        {
            *a += b;
        }
        for (a, b) in self.bucket_tenants.iter_mut().zip(&other.bucket_tenants) {
            *a += b;
        }
        self.metrics.merge(&other.metrics);
        self.objects_placed += other.objects_placed;
        self.words_placed += other.words_placed;
        self.words_moved += other.words_moved;
        self.failed_tenants += other.failed_tenants;
        self.panics += other.panics;
        self.engine_failures += other.engine_failures;
        for failure in &other.failures {
            if self.failures.len() >= MAX_FAILURE_RECORDS {
                break;
            }
            self.failures.push(failure.clone());
        }
    }

    /// The lower edge of the histogram bucket holding the `p`-quantile
    /// (`0 < p ≤ 1`) under the "nearest rank" definition. Exact for the
    /// max (use [`max_waste`](Self::max_waste) for that); quantiles are
    /// reported at 1/32 resolution.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.tenants == 0 {
            return 0.0;
        }
        let rank = ((p * self.tenants as f64).ceil() as u64).clamp(1, self.tenants);
        let mut seen = 0u64;
        for (bucket, &count) in self.waste_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket as f64 / WASTE_SCALE;
            }
        }
        (WASTE_BUCKETS - 1) as f64 / WASTE_SCALE
    }

    /// Resident bytes of this accumulator — the per-shard aggregation
    /// footprint (the O(shards) claim, made measurable).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.waste_hist.capacity() * std::mem::size_of::<u64>()
            + self.kind_counts.capacity() * std::mem::size_of::<u64>()
            + self.kind_waste_sum.capacity() * std::mem::size_of::<f64>()
            + self.heat.capacity() * std::mem::size_of::<u64>()
            + (self.kind_external.capacity()
                + self.kind_ghost.capacity()
                + self.kind_internal.capacity()
                + self.bucket_tenants.capacity())
                * std::mem::size_of::<u64>()
            + self.bucket_waste_sum.capacity() * std::mem::size_of::<f64>()
    }
}

/// The aggregate result of a fleet run. Every field is a deterministic
/// function of ([`FleetConfig`], substrate); nothing here depends on
/// thread count or wall-clock.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Tenants simulated.
    pub tenants: u64,
    /// Shards used (after clamping to the tenant count).
    pub shards: usize,
    /// The manager every tenant ran against.
    pub manager: String,
    /// Workload family names, aligned with the per-kind vectors.
    pub kinds: Vec<&'static str>,
    /// Tenant live bounds per size bucket (heat-map rows).
    pub size_buckets: Vec<u64>,
    /// Median waste factor (1/32 resolution).
    pub p50_waste: f64,
    /// 99th-percentile waste factor (1/32 resolution).
    pub p99_waste: f64,
    /// Maximum waste factor (exact).
    pub max_waste: f64,
    /// The first tenant attaining the maximum.
    pub max_tenant: u64,
    /// Mean waste factor.
    pub mean_waste: f64,
    /// Theorem 1 lower-bound waste factor per size bucket, evaluated at
    /// each bucket's `(M, log n, c)` — the curve the measured per-bucket
    /// means are attributed against.
    pub bucket_thm1: Vec<f64>,
    /// Aggregation state resident across all shards, in bytes.
    pub resident_bytes: u64,
    /// The merged streaming state (histograms, rollups, totals).
    pub accumulator: FleetAccumulator,
}

impl FleetReport {
    /// The fleet's metric plane, when the run collected one
    /// ([`RunConfig::metrics`](crate::RunConfig)); `None` on a
    /// metrics-off run.
    pub fn metrics(&self) -> Option<&MetricsSnapshot> {
        if self.accumulator.metrics.is_empty() {
            None
        } else {
            Some(&self.accumulator.metrics)
        }
    }

    /// Per-bucket mean waste factors (0 for empty buckets), aligned with
    /// [`size_buckets`](Self::size_buckets) and
    /// [`bucket_thm1`](Self::bucket_thm1).
    pub fn bucket_mean_waste(&self) -> Vec<f64> {
        self.accumulator
            .bucket_waste_sum
            .iter()
            .zip(&self.accumulator.bucket_tenants)
            .map(|(&sum, &count)| if count == 0 { 0.0 } else { sum / count as f64 })
            .collect()
    }
    /// Renders the size × waste heat map as ASCII, one row per size
    /// bucket (largest tenants on top), columns spanning waste `[0, 8)`
    /// in quarter-unit steps, each cell shaded by tenant count relative
    /// to the row's maximum.
    pub fn heat_map(&self) -> String {
        let mut out = String::new();
        for (rank, &m) in self.size_buckets.iter().enumerate().rev() {
            let row = &self.accumulator.heat[rank * HEAT_COLS..(rank + 1) * HEAT_COLS];
            let peak = row.iter().copied().max().unwrap_or(0);
            out.push_str(&format!("{m:>9} |"));
            for &count in row {
                let glyph = if peak == 0 || count == 0 {
                    GLYPHS[0]
                } else {
                    match count as f64 / peak as f64 {
                        f if f < 0.25 => GLYPHS[1],
                        f if f < 0.5 => GLYPHS[2],
                        f if f < 1.0 => GLYPHS[3],
                        _ => GLYPHS[4],
                    }
                };
                out.push(glyph);
            }
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>9}  0.0{}8.0  (waste factor HS/M)\n",
            "M (words)",
            " ".repeat(HEAT_COLS - 6)
        ));
        out
    }
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        let acc = &self.accumulator;
        let attribution = Json::object([
            (
                "external_words",
                Json::from(acc.kind_external.iter().sum::<u64>()),
            ),
            (
                "ghost_words",
                Json::from(acc.kind_ghost.iter().sum::<u64>()),
            ),
            (
                "internal_words",
                Json::from(acc.kind_internal.iter().sum::<u64>()),
            ),
            (
                "kind_external",
                Json::array(acc.kind_external.iter().map(|&w| Json::from(w))),
            ),
            (
                "kind_ghost",
                Json::array(acc.kind_ghost.iter().map(|&w| Json::from(w))),
            ),
            (
                "kind_internal",
                Json::array(acc.kind_internal.iter().map(|&w| Json::from(w))),
            ),
        ]);
        let mut fields = vec![
            ("tenants", Json::from(self.tenants)),
            ("shards", Json::from(self.shards as u64)),
            ("manager", Json::from(self.manager.as_str())),
            (
                "kinds",
                Json::array(self.kinds.iter().map(|&k| Json::from(k))),
            ),
            (
                "kind_counts",
                Json::array(acc.kind_counts.iter().map(|&c| Json::from(c))),
            ),
            (
                "kind_mean_waste",
                Json::array(acc.kind_counts.iter().zip(&acc.kind_waste_sum).map(
                    |(&count, &sum)| Json::from(if count == 0 { 0.0 } else { sum / count as f64 }),
                )),
            ),
            (
                "size_buckets",
                Json::array(self.size_buckets.iter().map(|&m| Json::from(m))),
            ),
            ("p50_waste", Json::from(self.p50_waste)),
            ("p99_waste", Json::from(self.p99_waste)),
            ("max_waste", Json::from(self.max_waste)),
            ("max_tenant", Json::from(self.max_tenant)),
            ("mean_waste", Json::from(self.mean_waste)),
            ("objects_placed", Json::from(acc.objects_placed)),
            ("words_placed", Json::from(acc.words_placed)),
            ("words_moved", Json::from(acc.words_moved)),
            ("resident_bytes", Json::from(self.resident_bytes)),
            (
                "waste_hist",
                Json::array(acc.waste_hist.iter().map(|&c| Json::from(c))),
            ),
            ("failed_tenants", Json::from(acc.failed_tenants)),
            ("panics", Json::from(acc.panics)),
            ("engine_failures", Json::from(acc.engine_failures)),
            (
                "failures",
                Json::array(acc.failures.iter().map(ToJson::to_json)),
            ),
            ("waste_attribution", attribution),
            (
                "bucket_mean_waste",
                Json::array(self.bucket_mean_waste().into_iter().map(Json::from)),
            ),
            (
                "bucket_tenants",
                Json::array(acc.bucket_tenants.iter().map(|&t| Json::from(t))),
            ),
            (
                "bucket_thm1",
                Json::array(self.bucket_thm1.iter().map(|&f| Json::from(f))),
            ),
        ];
        // The metric plane appears only when the run collected one, so
        // metrics-off reports carry no dead key.
        if let Some(metrics) = self.metrics() {
            fields.push(("metrics", metrics.to_json()));
        }
        Json::object(fields)
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} tenants x {} ({} shards)",
            self.tenants, self.manager, self.shards
        )?;
        writeln!(
            f,
            "waste HS/M: p50 {:.3}  p99 {:.3}  max {:.3} (tenant {})  mean {:.3}",
            self.p50_waste, self.p99_waste, self.max_waste, self.max_tenant, self.mean_waste
        )?;
        for (i, &kind) in self.kinds.iter().enumerate() {
            let count = self.accumulator.kind_counts[i];
            let mean = if count == 0 {
                0.0
            } else {
                self.accumulator.kind_waste_sum[i] / count as f64
            };
            writeln!(f, "  {kind:>9}: {count:>9} tenants, mean waste {mean:.3}")?;
        }
        writeln!(
            f,
            "totals: {} objects / {} words placed, {} words moved",
            self.accumulator.objects_placed,
            self.accumulator.words_placed,
            self.accumulator.words_moved
        )?;
        writeln!(
            f,
            "waste attribution: {} external / {} ghost / {} internal words",
            self.accumulator.kind_external.iter().sum::<u64>(),
            self.accumulator.kind_ghost.iter().sum::<u64>(),
            self.accumulator.kind_internal.iter().sum::<u64>()
        )?;
        writeln!(f, "measured waste vs Theorem 1 lower bound, per bucket:")?;
        let means = self.bucket_mean_waste();
        for (rank, &m) in self.size_buckets.iter().enumerate() {
            let tenants = self.accumulator.bucket_tenants[rank];
            if tenants == 0 {
                continue;
            }
            let thm1 = self.bucket_thm1.get(rank).copied().unwrap_or(0.0);
            let ratio = if thm1 > 0.0 { means[rank] / thm1 } else { 0.0 };
            writeln!(
                f,
                "  M={m:>7}: mean {:.3}  thm1 {thm1:.3}  ratio {ratio:.3}  ({tenants} tenants)",
                means[rank]
            )?;
        }
        // Fault-free fleets print exactly as they always did; the
        // quarantine section appears only when something failed.
        if self.accumulator.failed_tenants > 0 {
            writeln!(
                f,
                "failures: {} tenants quarantined ({} panic, {} engine)",
                self.accumulator.failed_tenants,
                self.accumulator.panics,
                self.accumulator.engine_failures
            )?;
            for failure in self.accumulator.failures.iter().take(5) {
                writeln!(
                    f,
                    "  tenant {:>9} [{}] {}: {}",
                    failure.tenant,
                    failure.family,
                    failure.cause.name(),
                    failure.cause.detail()
                )?;
            }
            if self.accumulator.failed_tenants > 5 {
                writeln!(
                    f,
                    "  ... ({} more; first {} retained in the report)",
                    self.accumulator.failed_tenants - 5,
                    self.accumulator.failures.len()
                )?;
            }
        }
        writeln!(
            f,
            "aggregation state: {} bytes across {} shards",
            self.resident_bytes, self.shards
        )?;
        write!(f, "{}", self.heat_map())
    }
}

/// Renders a caught panic payload, truncated to the retained-record cap.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    };
    truncate_detail(message)
}

fn truncate_detail(mut message: String) -> String {
    if message.chars().count() > MAX_FAILURE_DETAIL {
        message = message.chars().take(MAX_FAILURE_DETAIL).collect();
        message.push('…');
    }
    message
}

/// Runs one tenant end to end behind a fault-isolation barrier.
///
/// Panics and engine errors come back as a [`FailureCause`] (the caller
/// quarantines them); only configuration problems — which would affect
/// every tenant — abort the fleet. When the run's chaos plan fires the
/// `tenant-panic` site for this index, the tenant's program is wrapped
/// in a [`PanicProgram`] scheduled from the same deterministic roll, so
/// a poisoned fleet fails identically for any thread count.
fn run_tenant(
    mixer: &WorkloadMixer,
    bucket_params: &[Result<Params, String>],
    manager: ManagerKind,
    run: &RunConfig,
    index: u64,
) -> Result<(TenantSpec, Result<HeapSummary, FailureCause>), FleetError> {
    let spec = mixer.tenant(index);
    let shape = mixer.shape(&spec);
    let family = mixer.family(&spec);
    // (M, log n, c) is a pure function of the size bucket, so the params
    // were derived once per bucket in `drive` instead of once per tenant.
    let params = *bucket_params[spec.size_rank]
        .as_ref()
        .map_err(|e| FleetError::Config(format!("tenant {index}: {e}")))?;
    debug_assert_eq!(
        (params.m(), params.log_n(), params.c()),
        (shape.m, shape.log_n, shape.c),
        "bucket params must match the tenant's shape"
    );
    let built = manager
        .try_build_with(&params, run.mirror)
        .map_err(|e| FleetError::Config(format!("tenant {index}: {e}")))?;
    let heap = if manager.is_unbounded() {
        Heap::unlimited_compaction()
    } else if family.needs_budget() || manager.is_compacting() {
        Heap::new(shape.c)
    } else {
        Heap::non_moving()
    }
    .with_substrate(run.substrate);
    let program: Box<dyn Program> = if run.chaos.should_fire(FaultSite::TenantPanic, index) {
        let rounds = u64::from(mixer.config().rounds.max(1));
        let panic_round = (run.chaos.roll(FaultSite::TenantPanic, index) % rounds) as u32;
        Box::new(PanicProgram::new(family.instantiate(&shape), panic_round))
    } else {
        family.instantiate(&shape)
    };
    let tenant_plan = run.chaos.fork(index);
    let paranoia = run.paranoia;
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut exec = Execution::new(heap, program, built)
            .with_chaos(tenant_plan)
            .with_paranoia(paranoia);
        exec.run_summary()
    }));
    let outcome = match outcome {
        Ok(Ok(summary)) => Ok(summary),
        Ok(Err(error)) => Err(FailureCause::Engine(truncate_detail(error.to_string()))),
        Err(payload) => Err(FailureCause::Panic(panic_message(payload.as_ref()))),
    };
    Ok((spec, outcome))
}

/// Simulates the fleet and streams every tenant into the aggregate
/// report.
///
/// # Errors
///
/// [`FleetError::Config`] for degenerate configurations (tenant panics
/// and engine errors are quarantined into the report, not returned).
pub fn run(cfg: &FleetConfig, run: &RunConfig) -> Result<FleetReport, FleetError> {
    match drive(cfg, run, None, None)? {
        FleetOutcome::Complete(report) => Ok(report),
        // Without checkpoint options there is no stop_after, so drive
        // always processes every shard.
        FleetOutcome::Paused { .. } => unreachable!("uncheckpointed runs never pause"),
    }
}

/// Like [`run`], with a live [`Heartbeat`] following `progress`: a
/// periodic stderr line (tenants/sec, ETA, quarantine count, waste vs
/// the Theorem 1 reference) and an optional JSONL stream. The heartbeat
/// is a pure side channel — the returned report is byte-identical to
/// [`run`]'s for the same configuration.
///
/// # Errors
///
/// As for [`run`], plus [`FleetError::Config`] when the progress stream
/// file cannot be created or written.
pub fn run_with_progress(
    cfg: &FleetConfig,
    run: &RunConfig,
    progress: &ProgressOptions,
) -> Result<FleetReport, FleetError> {
    match drive(cfg, run, None, Some(progress))? {
        FleetOutcome::Complete(report) => Ok(report),
        FleetOutcome::Paused { .. } => unreachable!("uncheckpointed runs never pause"),
    }
}

/// Like [`run`], but saves a resumable checkpoint every
/// `opts.every` shards and — when `opts.resume` is set — continues from
/// an existing checkpoint instead of starting over. A run resumed after
/// an interruption (or after `opts.stop_after`) produces a report
/// byte-identical to an uninterrupted one.
///
/// # Errors
///
/// [`FleetError::Config`] as for [`run`]; [`FleetError::Checkpoint`] if
/// the checkpoint cannot be written, parsed, or belongs to a different
/// fleet configuration.
pub fn run_checkpointed(
    cfg: &FleetConfig,
    run: &RunConfig,
    opts: &CheckpointOptions,
) -> Result<FleetOutcome, FleetError> {
    drive(cfg, run, Some(opts), None)
}

/// [`run_checkpointed`] with a live [`Heartbeat`] (see
/// [`run_with_progress`]).
///
/// # Errors
///
/// As for [`run_checkpointed`], plus [`FleetError::Config`] when the
/// progress stream file cannot be created or written.
pub fn run_checkpointed_with_progress(
    cfg: &FleetConfig,
    run: &RunConfig,
    opts: &CheckpointOptions,
    progress: &ProgressOptions,
) -> Result<FleetOutcome, FleetError> {
    drive(cfg, run, Some(opts), Some(progress))
}

/// The single driver behind [`run`] and [`run_checkpointed`]: processes
/// shards in chunks, checkpointing after each chunk when asked to.
fn drive(
    cfg: &FleetConfig,
    run: &RunConfig,
    ckpt: Option<&CheckpointOptions>,
    progress: Option<&ProgressOptions>,
) -> Result<FleetOutcome, FleetError> {
    let _span = pcb_telemetry::span!("fleet.run");
    if cfg.tenants == 0 {
        return Err(FleetError::Config("tenants must be >= 1".into()));
    }
    let mixer = WorkloadMixer::new(cfg.mixer).map_err(FleetError::Config)?;
    let kinds = mixer.kinds();
    let size_buckets = mixer.size_buckets();

    // Per-bucket parameters, derived once: a tenant's (M, log n, c) is a
    // pure function of its size bucket (the mixer's per-tenant log_n
    // clamp is reproduced here), so the shards share these instead of
    // re-deriving and re-validating them for every tenant. An invalid
    // bucket stays lazy — it fails the fleet only when a tenant actually
    // lands in it, exactly as the per-tenant derivation did.
    let bucket_params: Vec<Result<Params, String>> = (0..size_buckets)
        .map(|rank| {
            let m = mixer.bucket_m(rank);
            let log_n = cfg
                .mixer
                .log_n
                .min((m.trailing_zeros()).saturating_sub(1))
                .max(1);
            Params::new(m, log_n, cfg.mixer.c).map_err(|e| e.to_string())
        })
        .collect();

    // The Theorem 1 curve at each bucket's (M, log n, c) — the reference
    // the measured per-bucket means are attributed against.
    let bucket_thm1: Vec<f64> = bucket_params
        .iter()
        .map(|p| p.as_ref().map(|&p| bounds::thm1::factor(p)).unwrap_or(0.0))
        .collect();
    // Heartbeat reference: the bound at the largest bucket, the same
    // normalization `pcb bench` uses for its fleet cells.
    let thm1_ref = bucket_thm1.last().copied().unwrap_or(0.0);

    let mut heartbeat = match progress {
        Some(opts) => Heartbeat::new("fleet", opts)
            .map_err(|e| FleetError::Config(format!("progress stream: {e}")))?,
        None => Heartbeat::disabled("fleet"),
    };

    // Contiguous, balanced shard ranges — a pure function of the config.
    let shards = cfg
        .shards
        .clamp(1, cfg.tenants.min(usize::MAX as u64) as usize);
    let per = cfg.tenants / shards as u64;
    let extra = cfg.tenants % shards as u64;
    let ranges: Vec<(u64, u64)> = (0..shards as u64)
        .map(|s| {
            let lo = s * per + s.min(extra);
            let hi = lo + per + u64::from(s < extra);
            (lo, hi)
        })
        .collect();

    let mut merged = FleetAccumulator::new(kinds.len(), size_buckets);
    let mut resident = merged.resident_bytes() as u64;
    let mut done = 0usize;

    if let Some(opts) = ckpt {
        if opts.resume {
            let state = checkpoint::load(cfg, run, opts, shards, kinds.len(), size_buckets)?;
            merged = state.accumulator;
            resident = state.resident;
            done = state.shards_done;
        }
    }

    // Without checkpointing there is one chunk: all shards at once —
    // unless a live heartbeat wants intermediate boundaries to tick at,
    // in which case the shards are processed in ~64 chunks. Chunking
    // never changes the result: shards still merge in shard order.
    let (target, every) = match ckpt {
        Some(opts) => (
            opts.stop_after.map_or(shards, |s| s.min(shards)),
            opts.every.max(1),
        ),
        None if heartbeat.active() => (shards, (shards / 64).max(1)),
        None => (shards, shards),
    };

    while done < target {
        let end = (done + every).min(target);
        let shard_results: Vec<Result<FleetAccumulator, FleetError>> =
            parallel::par_map_threads(run.threads, &ranges[done..end], |&(lo, hi)| {
                let _span = pcb_telemetry::span!("fleet.shard");
                let mut acc = FleetAccumulator::new(kinds.len(), size_buckets);
                for index in lo..hi {
                    let (spec, outcome) =
                        run_tenant(&mixer, &bucket_params, cfg.manager, run, index)?;
                    match outcome {
                        Ok(summary) => {
                            acc.record(&spec, &summary);
                            if run.metrics {
                                acc.record_metrics(kinds[spec.kind], &summary);
                            }
                        }
                        Err(cause) => {
                            if run.metrics {
                                acc.metrics
                                    .add_counter(format!("chaos.quarantined.{}", cause.name()), 1);
                            }
                            acc.record_failure(spec.index, kinds[spec.kind], cause);
                        }
                    }
                }
                Ok(acc)
            });

        // Merge in shard (= tenant-range) order: par_map returns input
        // order, so this fold is independent of scheduling.
        for result in shard_results {
            let acc = result?;
            resident += acc.resident_bytes() as u64;
            merged.merge(&acc);
        }
        done = end;
        if let Some(opts) = ckpt {
            checkpoint::save(cfg, run, opts, shards, done, resident, &merged)?;
        }
        let attempted = merged.tenants + merged.failed_tenants;
        let mean = if merged.tenants == 0 {
            0.0
        } else {
            merged.waste_sum / merged.tenants as f64
        };
        heartbeat.tick(
            attempted,
            cfg.tenants,
            &[
                ("shards_done", Json::from(done as u64)),
                ("quarantined", Json::from(merged.failed_tenants)),
                ("resident_bytes", Json::from(resident)),
                ("mean_waste", Json::from(mean)),
                (
                    "waste_vs_thm1",
                    Json::from(if thm1_ref > 0.0 { mean / thm1_ref } else { 0.0 }),
                ),
            ],
        );
    }
    heartbeat
        .finish()
        .map_err(|e| FleetError::Config(format!("progress stream: {e}")))?;

    if done < shards {
        return Ok(FleetOutcome::Paused {
            shards_done: done,
            shards_total: shards,
        });
    }

    let mean_waste = if merged.tenants == 0 {
        0.0
    } else {
        merged.waste_sum / merged.tenants as f64
    };
    Ok(FleetOutcome::Complete(FleetReport {
        // `accumulator.tenants` counts successes; the headline figure is
        // every tenant attempted, quarantined failures included.
        tenants: merged.tenants + merged.failed_tenants,
        shards,
        manager: cfg.manager.to_string(),
        kinds,
        size_buckets: (0..size_buckets).map(|r| mixer.bucket_m(r)).collect(),
        p50_waste: merged.quantile(0.5),
        p99_waste: merged.quantile(0.99),
        max_waste: merged.max_waste.max(0.0),
        max_tenant: merged.max_tenant,
        mean_waste,
        bucket_thm1,
        resident_bytes: resident,
        accumulator: merged,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            tenants: 64,
            shards: 8,
            mixer: MixerConfig {
                m_min: 128,
                m_max: 1024,
                ..MixerConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_runs_and_reports() {
        let report = run(&tiny(), &RunConfig::default()).expect("fleet runs");
        assert_eq!(report.tenants, 64);
        assert_eq!(report.shards, 8);
        assert_eq!(report.accumulator.kind_counts.iter().sum::<u64>(), 64);
        assert!(report.max_waste >= report.p99_waste);
        assert!(report.p99_waste >= report.p50_waste);
        // HS/M can dip below 1 for tenants that never fill up to their
        // bound M; it is always positive once anything was placed.
        assert!(report.mean_waste > 0.0);
        assert!(report.accumulator.objects_placed > 0);
        let text = report.to_string();
        assert!(text.contains("p50"));
        assert!(text.contains("waste factor"));
    }

    #[test]
    fn thread_count_does_not_change_the_report_bytes() {
        let cfg = tiny();
        let baseline =
            pcb_json::ToJson::to_json(&run(&cfg, &RunConfig::default()).unwrap()).to_string();
        for threads in [2, 4] {
            let report = run(&cfg, &RunConfig::default().with_threads(threads)).unwrap();
            assert_eq!(
                pcb_json::ToJson::to_json(&report).to_string(),
                baseline,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn shard_count_is_part_of_the_result_not_the_machine() {
        // Different shard counts may legitimately differ in resident
        // bytes, but the tenant-derived aggregates must match: shard
        // boundaries only partition a fixed per-tenant computation.
        let a = run(&tiny(), &RunConfig::default()).unwrap();
        let b = run(
            &FleetConfig {
                shards: 3,
                ..tiny()
            },
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(a.accumulator.waste_hist, b.accumulator.waste_hist);
        assert_eq!(a.max_waste, b.max_waste);
        assert_eq!(a.max_tenant, b.max_tenant);
        assert_eq!(a.accumulator.words_placed, b.accumulator.words_placed);
    }

    #[test]
    fn aggregation_state_is_o_shards() {
        let small = run(&tiny(), &RunConfig::default()).unwrap();
        let more_tenants = run(
            &FleetConfig {
                tenants: 256,
                ..tiny()
            },
            &RunConfig::default(),
        )
        .unwrap();
        // 4x the tenants, same shards: the aggregation footprint must not
        // grow with the tenant count.
        assert_eq!(small.resident_bytes, more_tenants.resident_bytes);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let err = run(
            &FleetConfig {
                tenants: 0,
                ..FleetConfig::default()
            },
            &RunConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::Config(_)));
    }

    #[test]
    fn injected_panics_are_quarantined_deterministically() {
        use pcb_chaos::FaultPlan;
        use pcb_heap::Substrate;
        // 20% of tenants panic mid-run; the fleet must survive and the
        // quarantine section must be byte-identical for every thread
        // count and substrate.
        let cfg = tiny();
        let chaos = FaultPlan::new(7).with_rate(FaultSite::TenantPanic, 200_000);
        let run_cfg = RunConfig::default().with_chaos(chaos);
        let baseline = run(&cfg, &run_cfg).expect("poisoned fleet still completes");
        assert!(baseline.accumulator.failed_tenants > 0, "panics fired");
        assert!(baseline.accumulator.panics == baseline.accumulator.failed_tenants);
        assert_eq!(
            baseline.accumulator.tenants + baseline.accumulator.failed_tenants,
            64,
            "every tenant is either recorded or quarantined"
        );
        assert_eq!(baseline.tenants, 64, "headline count is tenants attempted");
        for failure in &baseline.accumulator.failures {
            assert!(matches!(failure.cause, FailureCause::Panic(_)));
            assert!(
                failure.cause.detail().contains("injected tenant panic"),
                "panic message survives: {:?}",
                failure.cause
            );
        }
        let text = baseline.to_string();
        assert!(text.contains("quarantined"), "{text}");
        let expect = pcb_json::ToJson::to_json(&baseline).to_string();
        for threads in [2, 4] {
            for substrate in [Substrate::Bitmap, Substrate::Reference] {
                let report = run(
                    &cfg,
                    &run_cfg.with_threads(threads).with_substrate(substrate),
                )
                .unwrap();
                assert_eq!(
                    pcb_json::ToJson::to_json(&report).to_string(),
                    expect,
                    "threads={threads} substrate={substrate}"
                );
            }
        }
    }

    fn temp_checkpoint(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pcb-fleet-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn kill_and_resume_reproduces_the_report_byte_for_byte() {
        use pcb_chaos::FaultPlan;
        let cfg = tiny();
        // Fault injection on, so the failure section crosses the
        // checkpoint boundary too.
        let chaos = FaultPlan::new(11).with_rate(FaultSite::TenantPanic, 100_000);
        let run_cfg = RunConfig::default().with_chaos(chaos);
        let full = pcb_json::ToJson::to_json(&run(&cfg, &run_cfg).unwrap()).to_string();

        let path = temp_checkpoint("kill-resume");
        // "Kill" the run after 3 of 8 shards...
        let opts = CheckpointOptions::new(&path).every(2).stop_after(3);
        match run_checkpointed(&cfg, &run_cfg, &opts).unwrap() {
            FleetOutcome::Paused {
                shards_done,
                shards_total,
            } => {
                assert_eq!(shards_done, 3);
                assert_eq!(shards_total, 8);
            }
            FleetOutcome::Complete(_) => panic!("stop_after must pause"),
        }
        // ...and resume under a different thread count.
        let resumed = match run_checkpointed(
            &cfg,
            &run_cfg.with_threads(4),
            &CheckpointOptions::new(&path).every(2).resume(true),
        )
        .unwrap()
        {
            FleetOutcome::Complete(report) => report,
            FleetOutcome::Paused { .. } => panic!("resume must complete"),
        };
        assert_eq!(
            pcb_json::ToJson::to_json(&resumed).to_string(),
            full,
            "resumed report is byte-identical to the uninterrupted run"
        );
        // Resuming a finished run re-emits the identical report without
        // re-running any shard.
        let again =
            match run_checkpointed(&cfg, &run_cfg, &CheckpointOptions::new(&path).resume(true))
                .unwrap()
            {
                FleetOutcome::Complete(report) => report,
                FleetOutcome::Paused { .. } => panic!("finished run must complete"),
            };
        assert_eq!(pcb_json::ToJson::to_json(&again).to_string(), full);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoints_from_a_different_configuration_are_rejected() {
        let cfg = tiny();
        let run_cfg = RunConfig::default();
        let path = temp_checkpoint("fingerprint");
        let opts = CheckpointOptions::new(&path).every(4).stop_after(4);
        assert!(matches!(
            run_checkpointed(&cfg, &run_cfg, &opts).unwrap(),
            FleetOutcome::Paused { .. }
        ));
        let other = FleetConfig { tenants: 65, ..cfg };
        let err = run_checkpointed(
            &other,
            &run_cfg,
            &CheckpointOptions::new(&path).resume(true),
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::Checkpoint(_)), "{err}");
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
        // A resume pointed at a missing checkpoint is a clean error too.
        std::fs::remove_file(&path).ok();
        let err = run_checkpointed(&cfg, &run_cfg, &CheckpointOptions::new(&path).resume(true))
            .unwrap_err();
        assert!(matches!(err, FleetError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn quantile_edges_behave() {
        let mut acc = FleetAccumulator::new(1, 1);
        assert_eq!(acc.quantile(0.5), 0.0, "empty accumulator");
        // 3 tenants at waste 1.0 (bucket 32), 1 at waste 2.0 (bucket 64).
        acc.tenants = 4;
        acc.waste_hist[32] = 3;
        acc.waste_hist[64] = 1;
        assert_eq!(acc.quantile(0.5), 1.0);
        assert_eq!(acc.quantile(1.0), 2.0);
    }
}
