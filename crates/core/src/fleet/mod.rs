//! Fleet-scale simulation: 10⁵–10⁷ independent tenant heaps, streamed.
//!
//! The paper's bounds are per-heap; the production question is what a
//! *population* of heaps looks like — millions of small arenas, each
//! tracking its own `HS/M` against the Theorem 1/2 curves (the scale at
//! which Mesh and the SWCL incremental-compaction work evaluate). This
//! module runs that population:
//!
//! * tenants are split into **contiguous shards**; each shard runs its
//!   tenants in index order and folds every per-tenant [`HeapSummary`]
//!   into a fixed-size [`FleetAccumulator`] — histograms and rollups,
//!   never per-tenant traces — so resident aggregation state is
//!   O(shards), not O(tenants);
//! * shards fan out across threads via
//!   [`par_map_threads`](crate::parallel::par_map_threads) and merge in
//!   shard order, so the aggregate report is **byte-identical for any
//!   thread count**: the shard count and every shard boundary come from
//!   [`FleetConfig`], never from the machine;
//! * each tenant's program, size and seed are pure functions of
//!   `(fleet seed, tenant index)` via the
//!   [`WorkloadMixer`], so any shard can
//!   materialize any tenant without coordination.
//!
//! The aggregate [`FleetReport`] carries the fleet-wide p50/p99/max
//! waste factor, per-family breakdowns, and a size-bucket × waste
//! heat-map rollup.

use core::fmt;

use pcb_alloc::ManagerKind;
use pcb_heap::{Execution, ExecutionError, Heap, HeapSummary};
use pcb_json::{Json, ToJson};
use pcb_workload::{MixerConfig, TenantSpec, WorkloadMixer};

use crate::config::RunConfig;
use crate::parallel;
use crate::params::Params;

/// Waste-factor histogram buckets: 256 buckets of width 1/32 covering
/// `[0, 8)`; the last bucket absorbs everything above.
const WASTE_BUCKETS: usize = 256;
/// Histogram buckets per unit of waste factor.
const WASTE_SCALE: f64 = 32.0;
/// Heat-map columns: 32 columns of width 1/4 covering the same `[0, 8)`.
const HEAT_COLS: usize = 32;
/// Heat-map glyphs from empty to hottest (the repo's standard ramp).
const GLYPHS: [char; 5] = ['_', '.', ':', '+', '#'];

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of tenant heaps.
    pub tenants: u64,
    /// Number of aggregation shards. Fixed by configuration — never by
    /// the thread count — because the shard boundaries are part of the
    /// deterministic result. More shards than tenants are clamped.
    pub shards: usize,
    /// The memory manager every tenant runs against.
    pub manager: ManagerKind,
    /// Per-tenant workload assignment.
    pub mixer: MixerConfig,
}

impl Default for FleetConfig {
    /// 100 000 tenants in 256 shards against first-fit, default mix.
    fn default() -> Self {
        FleetConfig {
            tenants: 100_000,
            shards: 256,
            manager: ManagerKind::FirstFit,
            mixer: MixerConfig::default(),
        }
    }
}

/// Errors from a fleet run.
#[derive(Debug)]
pub enum FleetError {
    /// The configuration is degenerate (zero tenants, bad mixer, invalid
    /// per-tenant parameters).
    Config(String),
    /// One tenant's execution failed.
    Execution {
        /// The failing tenant's index.
        tenant: u64,
        /// The underlying engine error.
        error: ExecutionError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet configuration: {msg}"),
            FleetError::Execution { tenant, error } => {
                write!(f, "tenant {tenant} failed: {error}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Execution { error, .. } => Some(error),
            FleetError::Config(_) => None,
        }
    }
}

/// Streaming aggregation state: everything the fleet retains about the
/// tenants it has seen. Fixed-size (histograms and counters only), so a
/// shard's memory is independent of how many tenants it processes.
#[derive(Debug, Clone)]
pub struct FleetAccumulator {
    /// Tenants folded in.
    pub tenants: u64,
    /// Waste-factor histogram (bucket width 1/32, domain `[0, 8)`).
    pub waste_hist: Vec<u64>,
    /// Sum of waste factors (for the mean).
    pub waste_sum: f64,
    /// The maximum waste factor seen.
    pub max_waste: f64,
    /// The first (lowest-index) tenant attaining [`max_waste`](Self::max_waste).
    pub max_tenant: u64,
    /// Tenants per workload family.
    pub kind_counts: Vec<u64>,
    /// Waste-factor sum per workload family.
    pub kind_waste_sum: Vec<f64>,
    /// Heat map: `size_buckets × HEAT_COLS` tenant counts (row = tenant
    /// size bucket, column = waste factor in quarter-unit steps).
    pub heat: Vec<u64>,
    /// Total objects placed across the fleet.
    pub objects_placed: u64,
    /// Total words allocated across the fleet.
    pub words_placed: u64,
    /// Total words moved (compaction work) across the fleet.
    pub words_moved: u64,
}

impl FleetAccumulator {
    fn new(kinds: usize, size_buckets: usize) -> Self {
        FleetAccumulator {
            tenants: 0,
            waste_hist: vec![0; WASTE_BUCKETS],
            waste_sum: 0.0,
            max_waste: f64::NEG_INFINITY,
            max_tenant: 0,
            kind_counts: vec![0; kinds],
            kind_waste_sum: vec![0.0; kinds],
            heat: vec![0; size_buckets * HEAT_COLS],
            objects_placed: 0,
            words_placed: 0,
            words_moved: 0,
        }
    }

    /// Folds one tenant's summary in. Tenants must be recorded in index
    /// order within a shard (the merge relies on it for the max
    /// tie-break).
    fn record(&mut self, spec: &TenantSpec, summary: &HeapSummary) {
        self.tenants += 1;
        let waste = summary.waste_factor;
        let bucket = ((waste * WASTE_SCALE) as usize).min(WASTE_BUCKETS - 1);
        self.waste_hist[bucket] += 1;
        self.waste_sum += waste;
        if waste > self.max_waste {
            self.max_waste = waste;
            self.max_tenant = spec.index;
        }
        self.kind_counts[spec.kind] += 1;
        self.kind_waste_sum[spec.kind] += waste;
        let col = ((waste * HEAT_COLS as f64 / 8.0) as usize).min(HEAT_COLS - 1);
        self.heat[spec.size_rank * HEAT_COLS + col] += 1;
        self.objects_placed += summary.objects_placed;
        self.words_placed += summary.words_placed;
        self.words_moved += summary.words_moved;
    }

    /// Merges a later shard's accumulator into this one. Shards must be
    /// merged in shard (= tenant-range) order; the strict `>` keeps the
    /// lowest-index tenant among equal maxima.
    fn merge(&mut self, other: &FleetAccumulator) {
        self.tenants += other.tenants;
        for (a, b) in self.waste_hist.iter_mut().zip(&other.waste_hist) {
            *a += b;
        }
        self.waste_sum += other.waste_sum;
        if other.max_waste > self.max_waste {
            self.max_waste = other.max_waste;
            self.max_tenant = other.max_tenant;
        }
        for (a, b) in self.kind_counts.iter_mut().zip(&other.kind_counts) {
            *a += b;
        }
        for (a, b) in self.kind_waste_sum.iter_mut().zip(&other.kind_waste_sum) {
            *a += b;
        }
        for (a, b) in self.heat.iter_mut().zip(&other.heat) {
            *a += b;
        }
        self.objects_placed += other.objects_placed;
        self.words_placed += other.words_placed;
        self.words_moved += other.words_moved;
    }

    /// The lower edge of the histogram bucket holding the `p`-quantile
    /// (`0 < p ≤ 1`) under the "nearest rank" definition. Exact for the
    /// max (use [`max_waste`](Self::max_waste) for that); quantiles are
    /// reported at 1/32 resolution.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.tenants == 0 {
            return 0.0;
        }
        let rank = ((p * self.tenants as f64).ceil() as u64).clamp(1, self.tenants);
        let mut seen = 0u64;
        for (bucket, &count) in self.waste_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket as f64 / WASTE_SCALE;
            }
        }
        (WASTE_BUCKETS - 1) as f64 / WASTE_SCALE
    }

    /// Resident bytes of this accumulator — the per-shard aggregation
    /// footprint (the O(shards) claim, made measurable).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.waste_hist.capacity() * std::mem::size_of::<u64>()
            + self.kind_counts.capacity() * std::mem::size_of::<u64>()
            + self.kind_waste_sum.capacity() * std::mem::size_of::<f64>()
            + self.heat.capacity() * std::mem::size_of::<u64>()
    }
}

/// The aggregate result of a fleet run. Every field is a deterministic
/// function of ([`FleetConfig`], substrate); nothing here depends on
/// thread count or wall-clock.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Tenants simulated.
    pub tenants: u64,
    /// Shards used (after clamping to the tenant count).
    pub shards: usize,
    /// The manager every tenant ran against.
    pub manager: String,
    /// Workload family names, aligned with the per-kind vectors.
    pub kinds: Vec<&'static str>,
    /// Tenant live bounds per size bucket (heat-map rows).
    pub size_buckets: Vec<u64>,
    /// Median waste factor (1/32 resolution).
    pub p50_waste: f64,
    /// 99th-percentile waste factor (1/32 resolution).
    pub p99_waste: f64,
    /// Maximum waste factor (exact).
    pub max_waste: f64,
    /// The first tenant attaining the maximum.
    pub max_tenant: u64,
    /// Mean waste factor.
    pub mean_waste: f64,
    /// Aggregation state resident across all shards, in bytes.
    pub resident_bytes: u64,
    /// The merged streaming state (histograms, rollups, totals).
    pub accumulator: FleetAccumulator,
}

impl FleetReport {
    /// Renders the size × waste heat map as ASCII, one row per size
    /// bucket (largest tenants on top), columns spanning waste `[0, 8)`
    /// in quarter-unit steps, each cell shaded by tenant count relative
    /// to the row's maximum.
    pub fn heat_map(&self) -> String {
        let mut out = String::new();
        for (rank, &m) in self.size_buckets.iter().enumerate().rev() {
            let row = &self.accumulator.heat[rank * HEAT_COLS..(rank + 1) * HEAT_COLS];
            let peak = row.iter().copied().max().unwrap_or(0);
            out.push_str(&format!("{m:>9} |"));
            for &count in row {
                let glyph = if peak == 0 || count == 0 {
                    GLYPHS[0]
                } else {
                    match count as f64 / peak as f64 {
                        f if f < 0.25 => GLYPHS[1],
                        f if f < 0.5 => GLYPHS[2],
                        f if f < 1.0 => GLYPHS[3],
                        _ => GLYPHS[4],
                    }
                };
                out.push(glyph);
            }
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>9}  0.0{}8.0  (waste factor HS/M)\n",
            "M (words)",
            " ".repeat(HEAT_COLS - 6)
        ));
        out
    }
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        let acc = &self.accumulator;
        Json::object([
            ("tenants", Json::from(self.tenants)),
            ("shards", Json::from(self.shards as u64)),
            ("manager", Json::from(self.manager.as_str())),
            (
                "kinds",
                Json::array(self.kinds.iter().map(|&k| Json::from(k))),
            ),
            (
                "kind_counts",
                Json::array(acc.kind_counts.iter().map(|&c| Json::from(c))),
            ),
            (
                "kind_mean_waste",
                Json::array(acc.kind_counts.iter().zip(&acc.kind_waste_sum).map(
                    |(&count, &sum)| Json::from(if count == 0 { 0.0 } else { sum / count as f64 }),
                )),
            ),
            (
                "size_buckets",
                Json::array(self.size_buckets.iter().map(|&m| Json::from(m))),
            ),
            ("p50_waste", Json::from(self.p50_waste)),
            ("p99_waste", Json::from(self.p99_waste)),
            ("max_waste", Json::from(self.max_waste)),
            ("max_tenant", Json::from(self.max_tenant)),
            ("mean_waste", Json::from(self.mean_waste)),
            ("objects_placed", Json::from(acc.objects_placed)),
            ("words_placed", Json::from(acc.words_placed)),
            ("words_moved", Json::from(acc.words_moved)),
            ("resident_bytes", Json::from(self.resident_bytes)),
            (
                "waste_hist",
                Json::array(acc.waste_hist.iter().map(|&c| Json::from(c))),
            ),
        ])
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} tenants x {} ({} shards)",
            self.tenants, self.manager, self.shards
        )?;
        writeln!(
            f,
            "waste HS/M: p50 {:.3}  p99 {:.3}  max {:.3} (tenant {})  mean {:.3}",
            self.p50_waste, self.p99_waste, self.max_waste, self.max_tenant, self.mean_waste
        )?;
        for (i, &kind) in self.kinds.iter().enumerate() {
            let count = self.accumulator.kind_counts[i];
            let mean = if count == 0 {
                0.0
            } else {
                self.accumulator.kind_waste_sum[i] / count as f64
            };
            writeln!(f, "  {kind:>9}: {count:>9} tenants, mean waste {mean:.3}")?;
        }
        writeln!(
            f,
            "totals: {} objects / {} words placed, {} words moved",
            self.accumulator.objects_placed,
            self.accumulator.words_placed,
            self.accumulator.words_moved
        )?;
        writeln!(
            f,
            "aggregation state: {} bytes across {} shards",
            self.resident_bytes, self.shards
        )?;
        write!(f, "{}", self.heat_map())
    }
}

/// Runs one tenant end to end and returns its summary.
fn run_tenant(
    mixer: &WorkloadMixer,
    manager: ManagerKind,
    run: &RunConfig,
    index: u64,
) -> Result<(TenantSpec, HeapSummary), FleetError> {
    let spec = mixer.tenant(index);
    let shape = mixer.shape(&spec);
    let family = mixer.family(&spec);
    let params = Params::new(shape.m, shape.log_n, shape.c)
        .map_err(|e| FleetError::Config(format!("tenant {index}: {e}")))?;
    let heap = if manager.is_unbounded() {
        Heap::unlimited_compaction()
    } else if family.needs_budget() || manager.is_compacting() {
        Heap::new(shape.c)
    } else {
        Heap::non_moving()
    }
    .with_substrate(run.substrate);
    let mut exec = Execution::new(heap, family.instantiate(&shape), manager.build(&params));
    let summary = exec.run_summary().map_err(|error| FleetError::Execution {
        tenant: index,
        error,
    })?;
    Ok((spec, summary))
}

/// Simulates the fleet and streams every tenant into the aggregate
/// report.
///
/// # Errors
///
/// [`FleetError::Config`] for degenerate configurations,
/// [`FleetError::Execution`] if any tenant's engine run fails.
pub fn run(cfg: &FleetConfig, run: &RunConfig) -> Result<FleetReport, FleetError> {
    let _span = pcb_telemetry::span!("fleet.run");
    if cfg.tenants == 0 {
        return Err(FleetError::Config("tenants must be >= 1".into()));
    }
    let mixer = WorkloadMixer::new(cfg.mixer).map_err(FleetError::Config)?;
    let kinds = mixer.kinds();
    let size_buckets = mixer.size_buckets();

    // Contiguous, balanced shard ranges — a pure function of the config.
    let shards = cfg
        .shards
        .clamp(1, cfg.tenants.min(usize::MAX as u64) as usize);
    let per = cfg.tenants / shards as u64;
    let extra = cfg.tenants % shards as u64;
    let ranges: Vec<(u64, u64)> = (0..shards as u64)
        .map(|s| {
            let lo = s * per + s.min(extra);
            let hi = lo + per + u64::from(s < extra);
            (lo, hi)
        })
        .collect();

    let shard_results: Vec<Result<FleetAccumulator, FleetError>> =
        parallel::par_map_threads(run.threads, &ranges, |&(lo, hi)| {
            let _span = pcb_telemetry::span!("fleet.shard");
            let mut acc = FleetAccumulator::new(kinds.len(), size_buckets);
            for index in lo..hi {
                let (spec, summary) = run_tenant(&mixer, cfg.manager, run, index)?;
                acc.record(&spec, &summary);
            }
            Ok(acc)
        });

    // Merge in shard (= tenant-range) order: par_map returns input order,
    // so this fold is independent of scheduling.
    let mut merged = FleetAccumulator::new(kinds.len(), size_buckets);
    let mut resident = merged.resident_bytes() as u64;
    for result in shard_results {
        let acc = result?;
        resident += acc.resident_bytes() as u64;
        merged.merge(&acc);
    }

    let mean_waste = if merged.tenants == 0 {
        0.0
    } else {
        merged.waste_sum / merged.tenants as f64
    };
    Ok(FleetReport {
        tenants: merged.tenants,
        shards,
        manager: cfg.manager.to_string(),
        kinds,
        size_buckets: (0..size_buckets).map(|r| mixer.bucket_m(r)).collect(),
        p50_waste: merged.quantile(0.5),
        p99_waste: merged.quantile(0.99),
        max_waste: merged.max_waste.max(0.0),
        max_tenant: merged.max_tenant,
        mean_waste,
        resident_bytes: resident,
        accumulator: merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            tenants: 64,
            shards: 8,
            mixer: MixerConfig {
                m_min: 128,
                m_max: 1024,
                ..MixerConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_runs_and_reports() {
        let report = run(&tiny(), &RunConfig::default()).expect("fleet runs");
        assert_eq!(report.tenants, 64);
        assert_eq!(report.shards, 8);
        assert_eq!(report.accumulator.kind_counts.iter().sum::<u64>(), 64);
        assert!(report.max_waste >= report.p99_waste);
        assert!(report.p99_waste >= report.p50_waste);
        // HS/M can dip below 1 for tenants that never fill up to their
        // bound M; it is always positive once anything was placed.
        assert!(report.mean_waste > 0.0);
        assert!(report.accumulator.objects_placed > 0);
        let text = report.to_string();
        assert!(text.contains("p50"));
        assert!(text.contains("waste factor"));
    }

    #[test]
    fn thread_count_does_not_change_the_report_bytes() {
        let cfg = tiny();
        let baseline =
            pcb_json::ToJson::to_json(&run(&cfg, &RunConfig::default()).unwrap()).to_string();
        for threads in [2, 4] {
            let report = run(&cfg, &RunConfig::default().with_threads(threads)).unwrap();
            assert_eq!(
                pcb_json::ToJson::to_json(&report).to_string(),
                baseline,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn shard_count_is_part_of_the_result_not_the_machine() {
        // Different shard counts may legitimately differ in resident
        // bytes, but the tenant-derived aggregates must match: shard
        // boundaries only partition a fixed per-tenant computation.
        let a = run(&tiny(), &RunConfig::default()).unwrap();
        let b = run(
            &FleetConfig {
                shards: 3,
                ..tiny()
            },
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(a.accumulator.waste_hist, b.accumulator.waste_hist);
        assert_eq!(a.max_waste, b.max_waste);
        assert_eq!(a.max_tenant, b.max_tenant);
        assert_eq!(a.accumulator.words_placed, b.accumulator.words_placed);
    }

    #[test]
    fn aggregation_state_is_o_shards() {
        let small = run(&tiny(), &RunConfig::default()).unwrap();
        let more_tenants = run(
            &FleetConfig {
                tenants: 256,
                ..tiny()
            },
            &RunConfig::default(),
        )
        .unwrap();
        // 4x the tenants, same shards: the aggregation footprint must not
        // grow with the tenant count.
        assert_eq!(small.resident_bytes, more_tenants.resident_bytes);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let err = run(
            &FleetConfig {
                tenants: 0,
                ..FleetConfig::default()
            },
            &RunConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::Config(_)));
    }

    #[test]
    fn quantile_edges_behave() {
        let mut acc = FleetAccumulator::new(1, 1);
        assert_eq!(acc.quantile(0.5), 0.0, "empty accumulator");
        // 3 tenants at waste 1.0 (bucket 32), 1 at waste 2.0 (bucket 64).
        acc.tenants = 4;
        acc.waste_hist[32] = 3;
        acc.waste_hist[64] = 1;
        assert_eq!(acc.quantile(0.5), 1.0);
        assert_eq!(acc.quantile(1.0), 2.0);
    }
}
