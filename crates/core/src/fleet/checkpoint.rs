//! Fleet checkpoint/resume: shard-granularity snapshots in pcb-json.
//!
//! A fleet run is a fold over shards in a fixed order, so the complete
//! state of a partially-finished run is tiny: the merged
//! [`FleetAccumulator`], the accumulated resident-bytes figure, and how
//! many shards have been folded. `save` serializes exactly that —
//! plus a format version and a **fingerprint** of every input that
//! shapes the result — after each chunk; `load` refuses checkpoints
//! from any other configuration, so a resumed run is guaranteed to
//! produce a report byte-identical to an uninterrupted one.
//!
//! The fingerprint deliberately excludes the thread count: shard
//! boundaries and merge order are pure functions of the configuration,
//! so a run checkpointed under `--threads 8` may be resumed under
//! `--threads 1` (or vice versa) without changing a byte of the output.
//!
//! Writes are atomic (temp file + rename), so a run killed mid-save
//! leaves the previous checkpoint intact.

use std::fs;
use std::path::{Path, PathBuf};

use pcb_json::{Json, ToJson};

use super::{
    FailureCause, FleetAccumulator, FleetConfig, FleetError, FleetReport, TenantFailure, HEAT_COLS,
    MAX_FAILURE_RECORDS, WASTE_BUCKETS,
};
use crate::config::RunConfig;

/// Version stamp embedded in every checkpoint; bumped whenever the
/// serialized layout changes incompatibly (v2: waste-attribution
/// vectors, per-bucket rollups, and the metric plane joined the
/// accumulator).
pub const FORMAT_VERSION: u64 = 2;

/// How a checkpointed fleet run behaves.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Where the checkpoint file lives.
    pub path: PathBuf,
    /// Save after every this many shards (values < 1 behave as 1).
    pub every: usize,
    /// Continue from an existing checkpoint instead of starting over.
    pub resume: bool,
    /// Stop (with [`FleetOutcome::Paused`]) after this many shards —
    /// the deterministic stand-in for "the process was killed here",
    /// used by the kill/resume tests and CI gate.
    pub stop_after: Option<usize>,
}

impl CheckpointOptions {
    /// Options with the default cadence (every 16 shards), no resume.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            path: path.into(),
            every: 16,
            resume: false,
            stop_after: None,
        }
    }

    /// Overrides the checkpoint cadence.
    pub fn every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }

    /// Sets the resume flag.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Stops after `shards` shards.
    pub fn stop_after(mut self, shards: usize) -> Self {
        self.stop_after = Some(shards);
        self
    }
}

/// The result of a checkpointed fleet run.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one per run; the report is the point
pub enum FleetOutcome {
    /// Every shard ran; the aggregate report.
    Complete(FleetReport),
    /// The run stopped at `stop_after` with a checkpoint on disk;
    /// resume to continue.
    Paused {
        /// Shards folded into the checkpoint so far.
        shards_done: usize,
        /// Total shards the full run will fold.
        shards_total: usize,
    },
}

/// A checkpoint restored by [`load`], ready to continue the fold.
pub(crate) struct ResumeState {
    pub shards_done: usize,
    pub resident: u64,
    pub accumulator: FleetAccumulator,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a checkpoint's configuration description string (shared with
/// the exhaustive search's checkpoint).
pub(crate) fn hash_desc(desc: &str) -> u64 {
    desc.bytes()
        .fold(0x5bf0_3635_06e6_cedf, |h, b| splitmix64(h ^ u64::from(b)))
}

/// Hash of every input that shapes the fleet result. The thread count
/// is deliberately excluded (see the module docs).
pub(crate) fn fingerprint(cfg: &FleetConfig, run: &RunConfig) -> u64 {
    hash_desc(&format!(
        "{}|{}|{}|{:?}|{}|{}|{}|{}|{}",
        cfg.tenants,
        cfg.shards,
        cfg.manager,
        cfg.mixer,
        run.substrate,
        run.mirror,
        run.chaos,
        run.paranoia,
        // Metrics shape the accumulator (the snapshot is part of the
        // serialized state), so a metrics-on run cannot resume a
        // metrics-off checkpoint. Threads stay excluded.
        run.metrics,
    ))
}

/// Serializes the current fold state to `opts.path`, atomically.
pub(crate) fn save(
    cfg: &FleetConfig,
    run: &RunConfig,
    opts: &CheckpointOptions,
    shards_total: usize,
    shards_done: usize,
    resident: u64,
    acc: &FleetAccumulator,
) -> Result<(), FleetError> {
    let json = Json::object([
        ("format_version", Json::from(FORMAT_VERSION)),
        ("kind", Json::from("fleet")),
        ("fingerprint", Json::from(fingerprint(cfg, run))),
        ("shards_done", Json::from(shards_done)),
        ("shards_total", Json::from(shards_total)),
        ("resident", Json::from(resident)),
        ("accumulator", accumulator_to_json(acc)),
    ]);
    write_atomic(&opts.path, &format!("{json}\n"))
        .map_err(|e| FleetError::Checkpoint(format!("writing {}: {e}", opts.path.display())))
}

/// Writes via a sibling temp file and rename, so an interrupted save
/// never corrupts the previous checkpoint.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Reads and validates a checkpoint for this exact `(cfg, run)` pair.
pub(crate) fn load(
    cfg: &FleetConfig,
    run: &RunConfig,
    opts: &CheckpointOptions,
    shards_total: usize,
    kinds: usize,
    size_buckets: usize,
) -> Result<ResumeState, FleetError> {
    let path = &opts.path;
    let fail = |msg: String| FleetError::Checkpoint(format!("{}: {msg}", path.display()));
    let text = fs::read_to_string(path).map_err(|e| fail(format!("cannot read: {e}")))?;
    let json = Json::parse(&text).map_err(|e| fail(format!("invalid JSON: {e}")))?;

    let version = json.get("format_version").and_then(Json::as_u64);
    if version != Some(FORMAT_VERSION) {
        return Err(fail(format!(
            "format version {version:?} (this build reads {FORMAT_VERSION})"
        )));
    }
    if json.get("kind").and_then(Json::as_str) != Some("fleet") {
        return Err(fail("not a fleet checkpoint".into()));
    }
    let stamped = json.get("fingerprint").and_then(Json::as_u64);
    if stamped != Some(fingerprint(cfg, run)) {
        return Err(fail(
            "fingerprint mismatch: checkpoint belongs to a different \
             fleet configuration (tenants/shards/manager/mixer/substrate/mirror/chaos/paranoia)"
                .into(),
        ));
    }
    let shards_done = json
        .get("shards_done")
        .and_then(Json::as_u64)
        .ok_or_else(|| fail("missing shards_done".into()))? as usize;
    let total = json
        .get("shards_total")
        .and_then(Json::as_u64)
        .ok_or_else(|| fail("missing shards_total".into()))? as usize;
    if total != shards_total || shards_done > total {
        return Err(fail(format!(
            "shard topology mismatch: checkpoint has {shards_done}/{total}, run expects {shards_total}"
        )));
    }
    let resident = json
        .get("resident")
        .and_then(Json::as_u64)
        .ok_or_else(|| fail("missing resident".into()))?;
    let acc = json
        .get("accumulator")
        .ok_or_else(|| fail("missing accumulator".into()))?;
    let accumulator = accumulator_from_json(acc, kinds, size_buckets).map_err(fail)?;
    Ok(ResumeState {
        shards_done,
        resident,
        accumulator,
    })
}

fn accumulator_to_json(acc: &FleetAccumulator) -> Json {
    Json::object([
        ("tenants", Json::from(acc.tenants)),
        (
            "waste_hist",
            Json::array(acc.waste_hist.iter().map(|&c| Json::from(c))),
        ),
        ("waste_sum", Json::from(acc.waste_sum)),
        // NEG_INFINITY (no tenant recorded yet) serializes as `null`.
        ("max_waste", Json::from(acc.max_waste)),
        ("max_tenant", Json::from(acc.max_tenant)),
        (
            "kind_counts",
            Json::array(acc.kind_counts.iter().map(|&c| Json::from(c))),
        ),
        (
            "kind_waste_sum",
            Json::array(acc.kind_waste_sum.iter().map(|&s| Json::from(s))),
        ),
        ("heat", Json::array(acc.heat.iter().map(|&c| Json::from(c)))),
        (
            "kind_external",
            Json::array(acc.kind_external.iter().map(|&w| Json::from(w))),
        ),
        (
            "kind_ghost",
            Json::array(acc.kind_ghost.iter().map(|&w| Json::from(w))),
        ),
        (
            "kind_internal",
            Json::array(acc.kind_internal.iter().map(|&w| Json::from(w))),
        ),
        (
            "bucket_waste_sum",
            Json::array(acc.bucket_waste_sum.iter().map(|&s| Json::from(s))),
        ),
        (
            "bucket_tenants",
            Json::array(acc.bucket_tenants.iter().map(|&t| Json::from(t))),
        ),
        ("metrics", acc.metrics.to_json()),
        ("objects_placed", Json::from(acc.objects_placed)),
        ("words_placed", Json::from(acc.words_placed)),
        ("words_moved", Json::from(acc.words_moved)),
        ("failed_tenants", Json::from(acc.failed_tenants)),
        ("panics", Json::from(acc.panics)),
        ("engine_failures", Json::from(acc.engine_failures)),
        (
            "failures",
            Json::array(acc.failures.iter().map(ToJson::to_json)),
        ),
    ])
}

fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn f64_field(json: &Json, key: &str) -> Result<f64, String> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn u64_vec(json: &Json, key: &str, len: usize) -> Result<Vec<u64>, String> {
    let items = json
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array `{key}`"))?;
    if items.len() != len {
        return Err(format!(
            "array `{key}` has {} entries, expected {len}",
            items.len()
        ));
    }
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("non-integer entry in `{key}`"))
        })
        .collect()
}

fn f64_vec(json: &Json, key: &str, len: usize) -> Result<Vec<f64>, String> {
    let items = json
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array `{key}`"))?;
    if items.len() != len {
        return Err(format!(
            "array `{key}` has {} entries, expected {len}",
            items.len()
        ));
    }
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| format!("non-numeric entry in `{key}`"))
        })
        .collect()
}

fn accumulator_from_json(
    json: &Json,
    kinds: usize,
    size_buckets: usize,
) -> Result<FleetAccumulator, String> {
    let failures_json = json
        .get("failures")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing array `failures`".to_string())?;
    if failures_json.len() > MAX_FAILURE_RECORDS {
        return Err(format!(
            "{} failure records exceed the cap of {MAX_FAILURE_RECORDS}",
            failures_json.len()
        ));
    }
    let mut failures = Vec::with_capacity(failures_json.len());
    for entry in failures_json {
        let detail = entry
            .get("detail")
            .and_then(Json::as_str)
            .ok_or_else(|| "failure record missing `detail`".to_string())?
            .to_string();
        let cause = match entry.get("cause").and_then(Json::as_str) {
            Some("panic") => FailureCause::Panic(detail),
            Some("engine") => FailureCause::Engine(detail),
            other => return Err(format!("unknown failure cause {other:?}")),
        };
        failures.push(TenantFailure {
            tenant: u64_field(entry, "tenant")?,
            family: entry
                .get("family")
                .and_then(Json::as_str)
                .ok_or_else(|| "failure record missing `family`".to_string())?
                .to_string(),
            cause,
        });
    }
    Ok(FleetAccumulator {
        tenants: u64_field(json, "tenants")?,
        waste_hist: u64_vec(json, "waste_hist", WASTE_BUCKETS)?,
        waste_sum: f64_field(json, "waste_sum")?,
        // `null` (serialized NEG_INFINITY) means no tenant recorded yet.
        max_waste: json
            .get("max_waste")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NEG_INFINITY),
        max_tenant: u64_field(json, "max_tenant")?,
        kind_counts: u64_vec(json, "kind_counts", kinds)?,
        kind_waste_sum: f64_vec(json, "kind_waste_sum", kinds)?,
        heat: u64_vec(json, "heat", size_buckets * HEAT_COLS)?,
        kind_external: u64_vec(json, "kind_external", kinds)?,
        kind_ghost: u64_vec(json, "kind_ghost", kinds)?,
        kind_internal: u64_vec(json, "kind_internal", kinds)?,
        bucket_waste_sum: f64_vec(json, "bucket_waste_sum", size_buckets)?,
        bucket_tenants: u64_vec(json, "bucket_tenants", size_buckets)?,
        metrics: pcb_metrics::MetricsSnapshot::from_json(
            json.get("metrics")
                .ok_or_else(|| "missing object `metrics`".to_string())?,
        )
        .map_err(|e| format!("metrics snapshot: {e}"))?,
        objects_placed: u64_field(json, "objects_placed")?,
        words_placed: u64_field(json, "words_placed")?,
        words_moved: u64_field(json, "words_moved")?,
        failed_tenants: u64_field(json, "failed_tenants")?,
        panics: u64_field(json, "panics")?,
        engine_failures: u64_field(json, "engine_failures")?,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_every_shaping_input_but_not_threads() {
        let cfg = FleetConfig::default();
        let run = RunConfig::default();
        let base = fingerprint(&cfg, &run);
        assert_eq!(
            base,
            fingerprint(&cfg, &run.with_threads(8)),
            "threads excluded"
        );
        let mut other = cfg;
        other.tenants += 1;
        assert_ne!(base, fingerprint(&other, &run));
        assert_ne!(base, fingerprint(&cfg, &run.with_paranoia(4)));
        assert_ne!(
            base,
            fingerprint(&cfg, &run.with_metrics(true)),
            "the metric plane is part of the serialized accumulator"
        );
        // A plan with a seed but no rates injects nothing — it is the
        // empty plan behaviorally, so it must fingerprint identically.
        assert_eq!(
            base,
            fingerprint(&cfg, &run.with_chaos(pcb_chaos::FaultPlan::new(1)))
        );
        let armed = pcb_chaos::FaultPlan::new(1).with_rate(pcb_chaos::FaultSite::TenantPanic, 50);
        assert_ne!(base, fingerprint(&cfg, &run.with_chaos(armed)));
    }

    #[test]
    fn accumulator_round_trips_through_json_exactly() {
        let mut acc = FleetAccumulator::new(3, 4);
        acc.tenants = 17;
        acc.waste_hist[5] = 9;
        acc.waste_sum = 23.0625;
        acc.max_waste = 1.734_002_3;
        acc.max_tenant = 11;
        acc.kind_counts[2] = 17;
        acc.kind_waste_sum[2] = 23.0625;
        acc.heat[7] = 4;
        acc.objects_placed = 1234;
        acc.words_placed = 99_999;
        acc.words_moved = 42;
        acc.kind_external[1] = 77;
        acc.kind_ghost[0] = 5;
        acc.kind_internal[2] = 13;
        acc.bucket_waste_sum[3] = 6.5;
        acc.bucket_tenants[3] = 4;
        acc.metrics.add_counter("fleet.words_placed", 99_999);
        acc.metrics.record_gauge_max("fleet.max_waste_milli", 1734);
        acc.metrics.observe("fleet.waste_milli", 1734);
        acc.record_failure(3, "churn", FailureCause::Panic("boom".into()));
        let json = accumulator_to_json(&acc);
        let back = accumulator_from_json(&json, 3, 4).expect("round trip");
        assert_eq!(back.tenants, acc.tenants);
        assert_eq!(back.waste_hist, acc.waste_hist);
        assert_eq!(back.waste_sum.to_bits(), acc.waste_sum.to_bits());
        assert_eq!(back.max_waste.to_bits(), acc.max_waste.to_bits());
        assert_eq!(back.kind_waste_sum, acc.kind_waste_sum);
        assert_eq!(back.kind_external, acc.kind_external);
        assert_eq!(back.kind_ghost, acc.kind_ghost);
        assert_eq!(back.kind_internal, acc.kind_internal);
        assert_eq!(back.bucket_waste_sum, acc.bucket_waste_sum);
        assert_eq!(back.bucket_tenants, acc.bucket_tenants);
        assert_eq!(
            back.metrics.to_json().to_string(),
            acc.metrics.to_json().to_string(),
            "metric plane survives the round trip byte-for-byte"
        );
        assert_eq!(back.failures, acc.failures);
    }

    #[test]
    fn empty_accumulator_neg_infinity_max_survives_the_null_round_trip() {
        let acc = FleetAccumulator::new(1, 1);
        let text = accumulator_to_json(&acc).to_string();
        assert!(text.contains("\"max_waste\":null"), "{text}");
        let back = accumulator_from_json(&Json::parse(&text).unwrap(), 1, 1).expect("round trip");
        assert_eq!(back.max_waste, f64::NEG_INFINITY);
    }
}
