//! Parameter sweeps: evaluate any bound over ranges of `c`, `n`, or `ρ`
//! and get plot-ready series.
//!
//! The figure generators in [`figures`](crate::figures) are fixed to the
//! paper's exact parameters; sweeps are the general tool behind them and
//! behind the sensitivity experiments (how does the bound react to each
//! knob?).

use crate::bounds::{bp11, robson, thm1, thm2};
use crate::parallel;
use crate::params::Params;
use crate::sim::{Adversary, Sim};
use pcb_alloc::ManagerKind;

/// A labelled series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// What the series shows (e.g. `"thm1"`).
    pub label: String,
    /// The points, in sweep order; `y = NaN` is never produced — points
    /// where a bound does not apply are omitted.
    pub points: Vec<(f64, f64)>,
}

impl pcb_json::ToJson for Series {
    fn to_json(&self) -> pcb_json::Json {
        use pcb_json::Json;
        Json::object([
            ("label", Json::from(self.label.as_str())),
            (
                "points",
                Json::array(
                    self.points
                        .iter()
                        .map(|&(x, y)| Json::array([Json::from(x), Json::from(y)])),
                ),
            ),
        ])
    }
}

impl Series {
    /// Evaluates `eval` at every grid point in parallel (input order is
    /// preserved, so the result is identical to a sequential sweep) and
    /// keeps the points where the bound applies.
    fn collect_par<X: Copy + Sync, F>(label: &str, xs: Vec<X>, eval: F) -> Series
    where
        F: Fn(X) -> (f64, Option<f64>) + Sync,
    {
        let _span = pcb_telemetry::span!("sweep.collect");
        Series {
            label: label.to_owned(),
            points: parallel::par_map(&xs, |&x| eval(x))
                .into_iter()
                .filter_map(|(x, y)| y.map(|y| (x, y)))
                .collect(),
        }
    }

    /// The y-value at the given x, if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Whether the series is monotone non-decreasing in x.
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9)
    }
}

/// Every bound the repository knows how to evaluate, sweepable uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Theorem 1 lower bound (ρ-optimized, clamped at 1).
    Thm1Lower,
    /// Theorem 2 upper bound (absent below its `c` threshold).
    Thm2Upper,
    /// Robson's exact `P2` bound.
    RobsonP2,
    /// Robson's doubled bound for arbitrary sizes.
    RobsonDoubled,
    /// `(c+1)` of POPL'11.
    Bp11Upper,
    /// POPL'11 lower bound (clamped at 1).
    Bp11Lower,
}

impl Bound {
    /// All bounds, in a stable order.
    pub const ALL: [Bound; 6] = [
        Bound::Thm1Lower,
        Bound::Thm2Upper,
        Bound::RobsonP2,
        Bound::RobsonDoubled,
        Bound::Bp11Upper,
        Bound::Bp11Lower,
    ];

    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            Bound::Thm1Lower => "thm1-lower",
            Bound::Thm2Upper => "thm2-upper",
            Bound::RobsonP2 => "robson-p2",
            Bound::RobsonDoubled => "robson-doubled",
            Bound::Bp11Upper => "bp11-upper",
            Bound::Bp11Lower => "bp11-lower",
        }
    }

    /// Evaluates the bound as a waste factor, if it applies.
    pub fn factor(self, params: Params) -> Option<f64> {
        match self {
            Bound::Thm1Lower => Some(thm1::factor(params)),
            Bound::Thm2Upper => thm2::factor(params),
            Bound::RobsonP2 => Some(robson::factor_p2(params)),
            Bound::RobsonDoubled => Some(robson::factor_arbitrary(params)),
            Bound::Bp11Upper => Some(bp11::upper_factor(params)),
            Bound::Bp11Lower => Some(bp11::lower_factor(params)),
        }
    }
}

/// Sweeps a bound over `c` with `M, n` fixed.
///
/// ```
/// use partial_compaction::sweep::{over_c, Bound};
/// let s = over_c(Bound::Thm1Lower, 1 << 28, 20, 10..=100);
/// assert_eq!(s.points.len(), 91);
/// assert!(s.is_non_decreasing());
/// ```
pub fn over_c(bound: Bound, m: u64, log_n: u32, cs: impl Iterator<Item = u64>) -> Series {
    Series::collect_par(bound.label(), cs.collect(), |c| {
        let y = Params::new(m, log_n, c).ok().and_then(|p| bound.factor(p));
        (c as f64, y)
    })
}

/// Sweeps a bound over `log₂ n` with `c` fixed and `M = ratio·n`.
///
/// ```
/// use partial_compaction::sweep::{over_n, Bound};
/// let s = over_n(Bound::Thm1Lower, 256, 100, 10..=30);
/// assert!(s.at(20.0).unwrap() > 3.0); // the Figure-1 anchor
/// ```
pub fn over_n(bound: Bound, m_over_n: u64, c: u64, log_ns: impl Iterator<Item = u32>) -> Series {
    Series::collect_par(bound.label(), log_ns.collect(), |log_n| {
        let y = Params::new(m_over_n << log_n, log_n, c)
            .ok()
            .and_then(|p| bound.factor(p));
        (log_n as f64, y)
    })
}

/// Sweeps Theorem 1 over the density exponent `ρ` at fixed parameters —
/// the sensitivity of the paper's central design choice. Points where `ρ`
/// is infeasible are omitted.
///
/// ```
/// use partial_compaction::{sweep::over_rho, Params};
/// let s = over_rho(Params::paper_example(100), 1..=8);
/// // Only a handful of integral rho are feasible, as the paper remarks.
/// assert!(s.points.len() <= 6);
/// ```
pub fn over_rho(params: Params, rhos: impl Iterator<Item = u32>) -> Series {
    Series::collect_par("thm1-by-rho", rhos.collect(), |rho| {
        (rho as f64, thm1::factor_for_rho(params, rho))
    })
}

/// Sweeps the *measured* waste factor over `c`: runs the chosen adversary
/// against a manager at every grid point (in parallel) and returns `HS/M`
/// per `c`. The empirical counterpart of [`over_c`]: plot the two series
/// together to see a manager hugging (or beating) its bound. Infeasible
/// grid points are omitted, matching the analytic sweeps.
///
/// ```
/// use partial_compaction::sweep::{measured_over_c, over_c, Bound};
/// use partial_compaction::{sim::Adversary, ManagerKind};
/// let bound = over_c(Bound::Thm1Lower, 1 << 13, 9, [10, 20].into_iter());
/// let run = measured_over_c(Adversary::PF, ManagerKind::FirstFit, 1 << 13, 9, [10, 20].into_iter());
/// assert_eq!(run.points.len(), 2);
/// for &(c, hs_over_m) in &run.points {
///     assert!(hs_over_m >= 0.95 * bound.at(c).unwrap());
/// }
/// ```
pub fn measured_over_c(
    adversary: Adversary,
    manager: ManagerKind,
    m: u64,
    log_n: u32,
    cs: impl Iterator<Item = u64>,
) -> Series {
    Series::collect_par(manager.name(), cs.collect(), |c| {
        let y = Params::new(m, log_n, c).ok().and_then(|p| {
            Sim::new(p)
                .adversary(adversary)
                .manager(manager)
                .run()
                .ok()
                .map(|r| r.execution.waste_factor)
        });
        (c as f64, y)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_sweep_matches_figure_1() {
        let s = over_c(Bound::Thm1Lower, 1 << 28, 20, 10..=100);
        assert_eq!(s.points.len(), 91);
        assert!(s.is_non_decreasing());
        assert!((s.at(50.0).unwrap() - 3.18).abs() < 0.01);
        // Figure series agree with the sweep.
        for row in crate::figures::figure1() {
            assert!((s.at(row.c as f64).unwrap() - row.h).abs() < 1e-12);
        }
    }

    #[test]
    fn n_sweep_matches_figure_2() {
        let s = over_n(Bound::Thm1Lower, 256, 100, 10..=30);
        assert_eq!(s.points.len(), 21);
        assert!(s.is_non_decreasing());
        for row in crate::figures::figure2() {
            assert!((s.at(row.log_n as f64).unwrap() - row.h).abs() < 1e-12);
        }
    }

    #[test]
    fn inapplicable_points_are_omitted() {
        // Thm2 needs c > log(n)/2 = 10 at log n = 20.
        let s = over_c(Bound::Thm2Upper, 1 << 28, 20, 8..=12);
        let xs: Vec<f64> = s.points.iter().map(|&(x, _)| x).collect();
        assert_eq!(xs, vec![11.0, 12.0]);
    }

    #[test]
    fn rho_sweep_is_unimodal_at_paper_parameters() {
        // h(ρ) rises to the optimum then falls — the practical "very few
        // relevant integral ρ" remark of the theorem.
        let p = Params::paper_example(100);
        let s = over_rho(p, 1..=8);
        assert!(!s.points.is_empty());
        let max = s
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::NEG_INFINITY, f64::max);
        let (best_rho, _) = crate::bounds::thm1::optimal(p).unwrap();
        assert!((s.at(best_rho as f64).unwrap() - max).abs() < 1e-12);
        // Rises before the peak, falls after.
        let peak_idx = s
            .points
            .iter()
            .position(|&(x, _)| x == best_rho as f64)
            .unwrap();
        for w in s.points[..=peak_idx].windows(2) {
            assert!(w[1].1 >= w[0].1, "not rising before the peak: {s:?}");
        }
        for w in s.points[peak_idx..].windows(2) {
            assert!(w[1].1 <= w[0].1, "not falling after the peak: {s:?}");
        }
    }

    #[test]
    fn every_bound_evaluates_where_it_applies() {
        let p = Params::paper_example(50);
        for bound in Bound::ALL {
            let f = bound.factor(p).expect("all bounds apply at c=50");
            assert!(f >= 1.0, "{}: {f}", bound.label());
        }
    }

    #[test]
    fn measured_sweep_tracks_the_lower_bound() {
        let bound = over_c(Bound::Thm1Lower, 1 << 12, 8, [10, 20].into_iter());
        let run = measured_over_c(
            Adversary::PF,
            ManagerKind::FirstFit,
            1 << 12,
            8,
            [2, 10, 20].into_iter(),
        );
        // c = 2 is infeasible for P_F and must be omitted, not NaN'd.
        assert_eq!(run.points.len(), 2);
        for &(c, measured) in &run.points {
            assert!(measured >= 0.95 * bound.at(c).unwrap(), "c = {c}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = Bound::ALL.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Bound::ALL.len());
    }
}
