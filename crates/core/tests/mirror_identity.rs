//! The manager-mirror implementation must be invisible in the results:
//! every simulation cell and every fleet run on the indexed mirror and on
//! the seed BTree reference must serialize to byte-identical reports, at
//! every worker-thread count and on both occupancy substrates.
//!
//! This file holds a single `#[test]` on purpose: it mutates the
//! process-wide `PCB_THREADS` variable, and cargo runs test binaries one
//! at a time, so a lone test is the race-free way to flip the knob.

use partial_compaction::{
    fleet, parallel, sim, ManagerKind, MirrorImpl, Params, RunConfig, Substrate,
};
use pcb_json::ToJson;

fn with_threads<T>(threads: &str, run: impl FnOnce() -> T) -> T {
    let saved = std::env::var("PCB_THREADS").ok();
    std::env::set_var("PCB_THREADS", threads);
    let out = run();
    match saved {
        Some(v) => std::env::set_var("PCB_THREADS", v),
        None => std::env::remove_var("PCB_THREADS"),
    }
    out
}

fn sim_grid(mirror: MirrorImpl, substrate: Substrate) -> String {
    let params = Params::new(1 << 13, 9, 20).expect("valid");
    let cells: Vec<(ManagerKind, sim::Adversary)> = ManagerKind::ALL
        .iter()
        .flat_map(|&kind| [(kind, sim::Adversary::PF), (kind, sim::Adversary::Robson)])
        .collect();
    let reports = parallel::par_map(&cells, |&(kind, adversary)| {
        sim::Sim::new(params)
            .adversary(adversary)
            .manager(kind)
            .mirror(mirror)
            .substrate(substrate)
            .stats(true)
            .run()
            .expect("cell runs")
            .to_json()
            .to_string()
    });
    reports.join("\n")
}

fn fleet_run(mirror: MirrorImpl, substrate: Substrate, threads: usize) -> String {
    let cfg = fleet::FleetConfig {
        tenants: 48,
        shards: 6,
        ..fleet::FleetConfig::default()
    };
    let run = RunConfig::default()
        .with_threads(threads)
        .with_mirror(mirror)
        .with_substrate(substrate);
    fleet::run(&cfg, &run)
        .expect("fleet runs")
        .to_json()
        .to_string()
}

#[test]
fn mirrors_produce_identical_reports() {
    let sim_baseline = with_threads("1", || {
        sim_grid(MirrorImpl::Reference, Substrate::Reference)
    });
    let fleet_baseline = fleet_run(MirrorImpl::Reference, Substrate::Reference, 1);
    for threads in ["1", "2", "4"] {
        for mirror in MirrorImpl::ALL {
            for substrate in Substrate::ALL {
                let run = with_threads(threads, || sim_grid(mirror, substrate));
                assert_eq!(
                    sim_baseline, run,
                    "SimReports diverged: mirror={mirror} substrate={substrate} \
                     PCB_THREADS={threads}"
                );
                let n: usize = threads.parse().unwrap();
                let fleet = fleet_run(mirror, substrate, n);
                assert_eq!(
                    fleet_baseline, fleet,
                    "FleetReports diverged: mirror={mirror} substrate={substrate} threads={n}"
                );
            }
        }
    }
}
