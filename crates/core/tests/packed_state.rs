//! Property tests for the packed state encoding behind the exhaustive
//! search: `Vec<(u64, u64)> ↔ PackedState` must round-trip exactly
//! (ordering preserved), hashing must be a pure function of the payload,
//! and the inline→spill boundary must be invisible to every observer.

use proptest::prelude::*;

use partial_compaction::exhaustive::packed::{PackedState, INLINE_WORDS};

/// Strategy: a sorted, disjoint interval list at toy scale — the exact
/// shape the search encodes — as (gap, len) pairs materialized into
/// absolute (start, len) intervals.
fn intervals() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..40, 1u64..16), 0..12).prop_map(|pairs| {
        let mut cursor = 0u64;
        pairs
            .into_iter()
            .map(|(gap, len)| {
                let start = cursor + gap;
                cursor = start + len;
                (start, len)
            })
            .collect()
    })
}

fn rover_for(occ: &[(u64, u64)], seed: u64) -> u64 {
    let span = occ.last().map(|&(s, l)| s + l).unwrap_or(0);
    if span == 0 {
        0
    } else {
        seed % (span + 1)
    }
}

proptest! {
    #[test]
    fn roundtrip_without_rover(occ in intervals()) {
        let mut scratch = Vec::new();
        let packed = PackedState::encode(&occ, None, &mut scratch);
        let mut back = Vec::new();
        prop_assert_eq!(packed.decode_into(&mut back, false), None);
        prop_assert_eq!(&back, &occ, "decode must preserve order and values");
        // Sortedness survives the delta encoding.
        prop_assert!(back.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0));
    }

    #[test]
    fn roundtrip_with_rover(occ in intervals(), seed in 0u64..1000) {
        let rover = rover_for(&occ, seed);
        let mut scratch = Vec::new();
        let packed = PackedState::encode(&occ, Some(rover), &mut scratch);
        let mut back = Vec::new();
        prop_assert_eq!(packed.decode_into(&mut back, true), Some(rover));
        prop_assert_eq!(back, occ);
    }

    #[test]
    fn equal_configurations_hash_and_compare_equal(occ in intervals()) {
        let mut scratch_a = Vec::new();
        let mut scratch_b = Vec::new();
        let a = PackedState::encode(&occ, None, &mut scratch_a);
        let b = PackedState::encode(&occ, None, &mut scratch_b);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.hash64(), b.hash64());
        prop_assert_eq!(PackedState::hash_payload(a.payload()), a.hash64());
    }

    #[test]
    fn distinct_configurations_compare_unequal(a in intervals(), b in intervals()) {
        let mut scratch = Vec::new();
        let pa = PackedState::encode(&a, None, &mut scratch);
        let pb = PackedState::encode(&b, None, &mut scratch);
        prop_assert_eq!(pa == pb, a == b, "packed equality is interval equality");
    }

    #[test]
    fn inline_spill_boundary_is_exact_and_invisible(occ in intervals()) {
        let mut scratch = Vec::new();
        let packed = PackedState::encode(&occ, None, &mut scratch);
        // The representation spills exactly when the payload outgrows the
        // inline words; behaviour on either side is identical.
        prop_assert_eq!(packed.is_inline(), 2 * occ.len() <= INLINE_WORDS);
        prop_assert_eq!(packed.payload().len(), 2 * occ.len());
        let mut back = Vec::new();
        packed.decode_into(&mut back, false);
        prop_assert_eq!(back, occ);
    }

    #[test]
    fn splice_equals_whole_state_encoding(occ in intervals(), pos_seed in 0usize..16, len in 1u64..8) {
        // Insert a new interval into any gap wide enough (including the
        // frontier) and check the streaming splice encoder agrees with
        // encoding the spliced vector from scratch.
        let mut scratch = Vec::new();
        let span = occ.last().map(|&(s, l)| s + l).unwrap_or(0);
        // Candidate: place at the frontier (always legal).
        let addr = span + (pos_seed as u64 % 3);
        let pos = occ.partition_point(|&(s, _)| s < addr);
        let spliced = PackedState::encode_splice(&occ, pos, addr, len, None, &mut scratch);
        let mut by_hand = occ.clone();
        by_hand.insert(pos, (addr, len));
        let whole = PackedState::encode(&by_hand, None, &mut scratch);
        prop_assert_eq!(&spliced, &whole);
        prop_assert_eq!(spliced.hash64(), whole.hash64());
    }

    #[test]
    fn remove_equals_whole_state_encoding(occ in intervals(), pick in 0usize..12) {
        if occ.is_empty() {
            return Ok(()); // nothing to remove; trivially holds
        }
        let index = pick % occ.len();
        let mut scratch = Vec::new();
        let removed = PackedState::encode_remove(&occ, index, None, &mut scratch);
        let mut by_hand = occ.clone();
        by_hand.remove(index);
        let whole = PackedState::encode(&by_hand, None, &mut scratch);
        prop_assert_eq!(&removed, &whole);
        prop_assert_eq!(removed.hash64(), whole.hash64());
    }
}
