//! Fleet invariants that must hold across machines: the aggregate
//! report is byte-identical for every thread count × substrate
//! combination, and the streamed aggregation matches an oracle that
//! runs each tenant independently and folds the summaries by hand.

use partial_compaction::fleet::{self, FleetConfig};
use partial_compaction::heap::HeapSummary;
use partial_compaction::workload::MixerConfig;
use partial_compaction::{Execution, Heap, ManagerKind, Params, RunConfig, Substrate};
use pcb_json::ToJson;

fn small_fleet() -> FleetConfig {
    FleetConfig {
        tenants: 48,
        shards: 6,
        manager: ManagerKind::FirstFit,
        mixer: MixerConfig {
            m_min: 128,
            m_max: 1024,
            ..MixerConfig::default()
        },
    }
}

/// The tentpole guarantee: `PCB_THREADS` (resolved into
/// [`RunConfig::threads`]) and the heap substrate never change a byte of
/// the aggregate report.
#[test]
fn report_bytes_identical_across_threads_and_substrates() {
    let cfg = small_fleet();
    let baseline = fleet::run(&cfg, &RunConfig::default())
        .expect("fleet runs")
        .to_json()
        .to_string();
    for substrate in Substrate::ALL {
        for threads in [1usize, 2, 4] {
            let run = RunConfig::default()
                .with_threads(threads)
                .with_substrate(substrate);
            let report = fleet::run(&cfg, &run).expect("fleet runs");
            assert_eq!(
                report.to_json().to_string(),
                baseline,
                "threads={threads} substrate={substrate:?}"
            );
        }
    }
}

/// The metric plane obeys the same contract: with metrics on, the
/// snapshot rides the accumulator (counter sums, gauge maxes, histogram
/// buckets — integers only), so the whole report, `metrics` key
/// included, stays byte-identical across thread counts and substrates.
#[test]
fn metrics_plane_identical_across_threads_and_substrates() {
    let cfg = small_fleet();
    let with_metrics = RunConfig::default().with_metrics(true);
    let baseline_report = fleet::run(&cfg, &with_metrics).expect("fleet runs");
    assert!(
        baseline_report.metrics().is_some(),
        "metrics-on run collects a snapshot"
    );
    let baseline = baseline_report.to_json().to_string();
    assert!(
        baseline.contains("\"metrics\""),
        "snapshot embedded in JSON"
    );
    for substrate in Substrate::ALL {
        for threads in [1usize, 2, 4] {
            let run = with_metrics.with_threads(threads).with_substrate(substrate);
            let report = fleet::run(&cfg, &run).expect("fleet runs");
            assert_eq!(
                report.to_json().to_string(),
                baseline,
                "threads={threads} substrate={substrate:?}"
            );
        }
    }
    // Metrics off: no snapshot, no JSON key, same tenant-derived numbers.
    let off = fleet::run(&cfg, &RunConfig::default()).expect("fleet runs");
    assert!(off.metrics().is_none());
    assert!(!off.to_json().to_string().contains("\"metrics\""));
    assert_eq!(
        off.accumulator.words_placed, baseline_report.accumulator.words_placed,
        "collection does not perturb the simulation"
    );
}

/// The metric plane agrees with the accumulator it rode in on, and the
/// attribution arrays line up with the Theorem 1 reference curve.
#[test]
fn attribution_counters_match_the_accumulator() {
    let report =
        fleet::run(&small_fleet(), &RunConfig::default().with_metrics(true)).expect("fleet runs");
    let acc = &report.accumulator;
    let metrics = report.metrics().expect("metrics collected");
    assert_eq!(
        metrics.counter("waste.external_words"),
        acc.kind_external.iter().sum::<u64>()
    );
    assert_eq!(
        metrics.counter("waste.ghost_words"),
        acc.kind_ghost.iter().sum::<u64>()
    );
    assert_eq!(
        metrics.counter("waste.internal_words"),
        acc.kind_internal.iter().sum::<u64>()
    );
    assert_eq!(metrics.counter("fleet.words_placed"), acc.words_placed);
    assert_eq!(metrics.counter("fleet.objects_placed"), acc.objects_placed);
    let per_family: u64 = report
        .kinds
        .iter()
        .map(|kind| metrics.counter(&format!("fleet.tenants.{kind}")))
        .sum();
    assert_eq!(per_family, acc.tenants, "every tenant counted once");
    let waste_hist = metrics
        .histogram("fleet.waste_milli")
        .expect("waste histogram present");
    assert_eq!(waste_hist.count(), acc.tenants);
    // Attribution rows align with the bound curve: one Theorem 1 factor
    // per size bucket (>= 1x M; exactly 1.0 only where the bound
    // degenerates at minimal parameters), tenants fully partitioned.
    assert_eq!(report.bucket_thm1.len(), report.size_buckets.len());
    assert!(report.bucket_thm1.iter().all(|&f| f >= 1.0), "thm1 >= 1x M");
    assert!(
        report.bucket_thm1.last().is_some_and(|&f| f > 1.0),
        "largest bucket has a non-trivial bound"
    );
    assert_eq!(acc.bucket_tenants.iter().sum::<u64>(), acc.tenants);
    assert_eq!(report.bucket_mean_waste().len(), report.size_buckets.len());
}

/// Runs one tenant exactly the way `fleet::run` does, but standalone —
/// the oracle side of the aggregation test.
fn run_tenant_independently(cfg: &FleetConfig, index: u64) -> (usize, HeapSummary) {
    let mixer = partial_compaction::workload::WorkloadMixer::new(cfg.mixer).expect("valid mixer");
    let spec = mixer.tenant(index);
    let shape = mixer.shape(&spec);
    let family = mixer.family(&spec);
    let params = Params::new(shape.m, shape.log_n, shape.c).expect("valid tenant params");
    let heap = if cfg.manager.is_unbounded() {
        Heap::unlimited_compaction()
    } else if family.needs_budget() || cfg.manager.is_compacting() {
        Heap::new(shape.c)
    } else {
        Heap::non_moving()
    };
    let mut exec = Execution::new(heap, family.instantiate(&shape), cfg.manager.build(&params));
    (spec.kind, exec.run_summary().expect("tenant runs"))
}

/// Oracle: an N=8 fleet's streamed aggregates equal the fold of eight
/// independently-run tenant reports.
#[test]
fn streamed_aggregates_match_independent_runs() {
    let cfg = FleetConfig {
        tenants: 8,
        shards: 3, // uneven split: ranges 3/3/2
        ..small_fleet()
    };
    let report = fleet::run(&cfg, &RunConfig::default()).expect("fleet runs");

    let oracle: Vec<(usize, HeapSummary)> = (0..cfg.tenants)
        .map(|index| run_tenant_independently(&cfg, index))
        .collect();

    // Totals are plain sums over the independent runs.
    let objects: u64 = oracle.iter().map(|(_, s)| s.objects_placed).sum();
    let placed: u64 = oracle.iter().map(|(_, s)| s.words_placed).sum();
    let moved: u64 = oracle.iter().map(|(_, s)| s.words_moved).sum();
    assert_eq!(report.accumulator.objects_placed, objects);
    assert_eq!(report.accumulator.words_placed, placed);
    assert_eq!(report.accumulator.words_moved, moved);
    assert_eq!(report.tenants, cfg.tenants);

    // Kind counts fold per family.
    let mut kind_counts = vec![0u64; report.kinds.len()];
    for (kind, _) in &oracle {
        kind_counts[*kind] += 1;
    }
    assert_eq!(report.accumulator.kind_counts, kind_counts);

    // Mean and max (first tenant wins ties, strict `>` while scanning in
    // index order).
    let sum: f64 = oracle.iter().map(|(_, s)| s.waste_factor).sum();
    assert!((report.mean_waste - sum / cfg.tenants as f64).abs() < 1e-12);
    let (mut max, mut max_tenant) = (f64::NEG_INFINITY, 0u64);
    for (index, (_, summary)) in oracle.iter().enumerate() {
        if summary.waste_factor > max {
            max = summary.waste_factor;
            max_tenant = index as u64;
        }
    }
    assert_eq!(report.max_waste, max);
    assert_eq!(report.max_tenant, max_tenant);

    // Quantiles are nearest-rank at 1/32 bucket resolution: the reported
    // value is the lower bucket edge of the rank-th smallest waste.
    let mut wastes: Vec<f64> = oracle.iter().map(|(_, s)| s.waste_factor).collect();
    wastes.sort_by(|a, b| a.partial_cmp(b).expect("finite waste"));
    let edge = |p: f64| {
        let rank = ((p * wastes.len() as f64).ceil() as usize).clamp(1, wastes.len());
        let bucket = ((wastes[rank - 1] * 32.0) as usize).min(255);
        bucket as f64 / 32.0
    };
    assert_eq!(report.p50_waste, edge(0.5));
    assert_eq!(report.p99_waste, edge(0.99));

    // And the histogram holds exactly one entry per tenant.
    assert_eq!(
        report.accumulator.waste_hist.iter().sum::<u64>(),
        cfg.tenants
    );
}
