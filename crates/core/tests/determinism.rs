//! The parallel experiment engine must be invisible in the results:
//! every experiment surface run with `PCB_THREADS=1` (the exact
//! sequential code path) and with several worker threads must produce
//! identical output.
//!
//! This file holds a single `#[test]` on purpose: it mutates the
//! process-wide `PCB_THREADS` variable, and cargo runs test binaries one
//! at a time, so a lone test is the race-free way to flip the knob.

use partial_compaction::exhaustive::{worst_case, SearchPolicy};
use partial_compaction::sweep::{self, Bound};
use partial_compaction::{figures, parallel, sim, ManagerKind, Params};

fn with_threads<T>(threads: &str, run: impl FnOnce() -> T) -> T {
    let saved = std::env::var("PCB_THREADS").ok();
    std::env::set_var("PCB_THREADS", threads);
    let out = run();
    match saved {
        Some(v) => std::env::set_var("PCB_THREADS", v),
        None => std::env::remove_var("PCB_THREADS"),
    }
    out
}

#[test]
fn parallel_results_are_identical_to_sequential() {
    type Surface = fn() -> String;
    let surfaces: [(&str, Surface); 4] = [
        ("sweep", || {
            let series = [
                sweep::over_c(Bound::Thm1Lower, 1 << 20, 12, 10..=200),
                sweep::over_c(Bound::Thm2Upper, 1 << 20, 12, 10..=200),
                sweep::over_n(Bound::RobsonP2, 16, 40, 1..=16),
            ];
            format!("{series:?}")
        }),
        ("figures", || {
            format!(
                "{:?}\n{:?}\n{:?}",
                figures::figure1(),
                figures::figure2(),
                figures::figure3()
            )
        }),
        ("exhaustive", || {
            let params = Params::new(6, 1, 10).expect("toy params");
            let ff = worst_case(params, SearchPolicy::FirstFit, 1_000_000);
            let bf = worst_case(params, SearchPolicy::BestFit, 1_000_000);
            format!("{ff:?}\n{bf:?}")
        }),
        ("empirical", || {
            let params = Params::new(1 << 13, 9, 20).expect("valid");
            let cells: Vec<ManagerKind> = ManagerKind::ALL.to_vec();
            let reports = parallel::par_map(&cells, |&kind| {
                sim::Sim::new(params)
                    .adversary(sim::Adversary::PF)
                    .manager(kind)
                    .run()
                    .expect("cell runs")
                    .to_string()
            });
            reports.join("\n")
        }),
    ];

    for (name, surface) in surfaces {
        let sequential = with_threads("1", surface);
        assert_eq!(with_threads("1", parallel::thread_count), 1);
        for threads in ["2", "3", "8"] {
            let parallel_run = with_threads(threads, surface);
            assert_eq!(
                sequential, parallel_run,
                "{name} diverged with PCB_THREADS={threads}"
            );
        }
    }
}
