//! The packed/interned search must be indistinguishable from the seed
//! implementation: byte-identical `WorstCase` on a pinned parameter grid,
//! for every policy, at `PCB_THREADS=1` and at several worker counts.
//!
//! This file holds a single `#[test]` on purpose: it mutates the
//! process-wide `PCB_THREADS` variable, and cargo runs test binaries one
//! at a time, so a lone test is the race-free way to flip the knob.

use partial_compaction::exhaustive::{reference, try_worst_case, SearchPolicy};
use partial_compaction::{parallel, Params};

fn with_threads<T>(threads: &str, run: impl FnOnce() -> T) -> T {
    let saved = std::env::var("PCB_THREADS").ok();
    std::env::set_var("PCB_THREADS", threads);
    let out = run();
    match saved {
        Some(v) => std::env::set_var("PCB_THREADS", v),
        None => std::env::remove_var("PCB_THREADS"),
    }
    out
}

#[test]
fn packed_search_is_byte_identical_to_the_seed_implementation() {
    // The pinned grid: every cell small enough to run the deliberately
    // slow reference implementation, large enough to exercise spills
    // (states beyond 4 intervals) and multi-size allocation.
    let grid: [(u64, u32); 4] = [(6, 1), (8, 1), (6, 2), (8, 2)];
    for (m, log_n) in grid {
        let params = Params::new(m, log_n, 10).expect("toy parameters");
        for policy in SearchPolicy::ALL {
            let seed = reference::worst_case(params, policy, 3_000_000)
                .expect("grid is toy-scale")
                .worst;
            let sequential = with_threads("1", || {
                assert_eq!(parallel::thread_count(), 1);
                try_worst_case(params, policy, 3_000_000)
                    .expect("toy")
                    .worst
            });
            assert_eq!(
                sequential,
                seed,
                "{} at (M={m}, log n={log_n}): packed sequential diverged from seed",
                policy.name()
            );
            for threads in ["2", "4"] {
                let parallel_run = with_threads(threads, || {
                    try_worst_case(params, policy, 3_000_000)
                        .expect("toy")
                        .worst
                });
                assert_eq!(
                    parallel_run,
                    seed,
                    "{} at (M={m}, log n={log_n}): diverged with PCB_THREADS={threads}",
                    policy.name()
                );
            }
        }
    }

    // Typed errors agree with the reference too: the same cap trips both.
    let params = Params::new(8, 2, 10).expect("toy");
    let packed_err = try_worst_case(params, SearchPolicy::FirstFit, 100).unwrap_err();
    let seed_err = reference::worst_case(params, SearchPolicy::FirstFit, 100).unwrap_err();
    assert!(matches!(
        packed_err,
        partial_compaction::exhaustive::SearchError::StateSpaceExceeded { .. }
    ));
    assert!(matches!(
        seed_err,
        partial_compaction::exhaustive::SearchError::StateSpaceExceeded { .. }
    ));
}
