//! Observers must be invisible in the physics: attaching any combination
//! of event recorders, per-round series, and manager stats to a run must
//! leave every `Report` field identical to the unobserved run — under the
//! sequential code path and under parallel workers alike.
//!
//! This file holds a single `#[test]` on purpose: it mutates the
//! process-wide `PCB_THREADS` variable, and cargo runs test binaries one
//! at a time, so a lone test is the race-free way to flip the knob.

use partial_compaction::{sim, ManagerKind, Params, Recorder};

fn with_threads<T>(threads: &str, run: impl FnOnce() -> T) -> T {
    let saved = std::env::var("PCB_THREADS").ok();
    std::env::set_var("PCB_THREADS", threads);
    let out = run();
    match saved {
        Some(v) => std::env::set_var("PCB_THREADS", v),
        None => std::env::remove_var("PCB_THREADS"),
    }
    out
}

fn fingerprint(report: &partial_compaction::Report) -> String {
    format!("{report:?}")
}

fn run_pair(kind: ManagerKind) -> (String, String) {
    let params = Params::new(1 << 13, 9, 20).expect("valid");
    let plain = sim::Sim::new(params)
        .manager(kind)
        .run()
        .expect("plain run");
    let mut recorder = Recorder::new();
    let watched = sim::Sim::new(params)
        .manager(kind)
        .observe(&mut recorder)
        .series(1)
        .stats(true)
        .run()
        .expect("observed run");
    assert!(
        !recorder.is_empty(),
        "{}: the recorder saw no events",
        kind.name()
    );
    assert!(
        watched.series.as_ref().is_some_and(|s| !s.is_empty()),
        "{}: no series collected",
        kind.name()
    );
    (
        fingerprint(&plain.execution),
        fingerprint(&watched.execution),
    )
}

#[test]
fn observers_never_change_the_report() {
    for threads in ["1", "4"] {
        with_threads(threads, || {
            for kind in ManagerKind::ALL {
                let (plain, watched) = run_pair(kind);
                assert_eq!(
                    plain,
                    watched,
                    "{} diverged under observation (PCB_THREADS={threads})",
                    kind.name()
                );
            }
        });
    }
}
