//! The occupancy substrate must be invisible in the results: every
//! simulation cell run on the bitmap substrate and on the `BTreeMap`
//! reference oracle must serialize to byte-identical `SimReport`s, at
//! every worker-thread count.
//!
//! This file holds a single `#[test]` on purpose: it mutates the
//! process-wide `PCB_THREADS` variable, and cargo runs test binaries one
//! at a time, so a lone test is the race-free way to flip the knob.

use partial_compaction::{parallel, sim, ManagerKind, Params, Substrate};
use pcb_json::ToJson;

fn with_threads<T>(threads: &str, run: impl FnOnce() -> T) -> T {
    let saved = std::env::var("PCB_THREADS").ok();
    std::env::set_var("PCB_THREADS", threads);
    let out = run();
    match saved {
        Some(v) => std::env::set_var("PCB_THREADS", v),
        None => std::env::remove_var("PCB_THREADS"),
    }
    out
}

fn grid(substrate: Substrate) -> String {
    let params = Params::new(1 << 13, 9, 20).expect("valid");
    let cells: Vec<(ManagerKind, sim::Adversary)> = ManagerKind::ALL
        .iter()
        .flat_map(|&kind| [(kind, sim::Adversary::PF), (kind, sim::Adversary::Robson)])
        .collect();
    let reports = parallel::par_map(&cells, |&(kind, adversary)| {
        sim::Sim::new(params)
            .adversary(adversary)
            .manager(kind)
            .substrate(substrate)
            .run()
            .expect("cell runs")
            .to_json()
            .to_string()
    });
    reports.join("\n")
}

#[test]
fn substrates_produce_identical_reports() {
    let baseline = with_threads("1", || grid(Substrate::Reference));
    for threads in ["1", "2", "4"] {
        for substrate in Substrate::ALL {
            let run = with_threads(threads, || grid(substrate));
            assert_eq!(
                baseline, run,
                "SimReports diverged: substrate={substrate} PCB_THREADS={threads}"
            );
        }
    }
}
