//! Property: every injected mirror corruption is *detected*.
//!
//! The chaos harness plants a single free-list corruption
//! ([`FaultSite::MirrorFlip`]) mid-run; paranoia mode cross-checks the
//! manager's mirror against the ground-truth `SpaceMap` every `k`
//! rounds. The property under test is the safety contract of §2.12:
//! a run that suffered an injected corruption must never complete
//! cleanly. It may fail loudly in one of three acceptable ways —
//! a `MirrorDivergence` from the paranoia sweep (within `k` rounds of
//! the injection), any other execution error (the ground-truth referee
//! rejecting an overlapping placement), or a panic — but `Ok` is a
//! silent survival and fails the test.

use std::panic::{catch_unwind, AssertUnwindSafe};

use partial_compaction::heap::{Execution, ExecutionError, Heap, MirrorCheck, Substrate};
use partial_compaction::workload::{ChurnConfig, ChurnWorkload};
use partial_compaction::{FaultPlan, FaultSite, ManagerKind, Params};
use proptest::prelude::*;

/// The managers that maintain a free-list mirror (and therefore
/// implement fault injection); the other kinds report
/// [`MirrorCheck::Unsupported`] and are exercised separately below.
const MIRRORED: [ManagerKind; 3] = [
    ManagerKind::FirstFit,
    ManagerKind::BestFit,
    ManagerKind::NextFit,
];

const M: u64 = 1 << 12;
const LOG_N: u32 = 6;

fn churn(seed: u64) -> ChurnWorkload {
    let mut cfg = ChurnConfig::typical(M, LOG_N);
    cfg.rounds = 24;
    cfg.allocs_per_round = 16;
    cfg.seed = seed;
    ChurnWorkload::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Corruption injected at a chaos-chosen round is caught within the
    // paranoia cadence, across managers, substrates, and seeds.
    #[test]
    fn injected_corruption_is_detected_within_the_paranoia_cadence(
        seed in 0u64..(1 << 48),
        cadence in 1u32..5,
        substrate_idx in 0usize..Substrate::ALL.len(),
        kind_idx in 0usize..MIRRORED.len(),
    ) {
        let substrate = Substrate::ALL[substrate_idx];
        let kind = MIRRORED[kind_idx];
        let params = Params::new(M, LOG_N, 2).expect("valid params");
        let manager = kind.try_build(&params).expect("mirrored kinds build");
        let heap = Heap::non_moving().with_substrate(substrate);
        // Rate 100% arms the flip at the first round with live objects;
        // the engine plants at most one corruption per run.
        let plan = FaultPlan::new(seed).with_rate(FaultSite::MirrorFlip, 1_000_000);
        let mut exec = Execution::new(heap, churn(seed), manager)
            .with_chaos(plan)
            .with_paranoia(cadence);
        let outcome = catch_unwind(AssertUnwindSafe(|| exec.run_summary()));
        let injected = exec.mirror_fault_round();
        match outcome {
            // A panic is a loud failure: the corruption did not survive.
            Err(_) => {}
            Ok(Ok(_)) => {
                // A clean run is only acceptable if no fault was planted
                // (e.g. the heap was empty at every decision point —
                // impossible for this churn, but the property spells it
                // out rather than assuming).
                prop_assert!(
                    injected.is_none(),
                    "corruption injected at round {:?} survived a clean \
                     {kind} run on {substrate} (cadence {cadence})",
                    injected,
                );
            }
            Ok(Err(ExecutionError::MirrorDivergence {
                round,
                injected_round,
                ..
            })) => {
                prop_assert_eq!(injected_round, injected);
                let at = injected_round.expect("divergence implies an injection");
                prop_assert!(
                    round >= at && round - at < cadence,
                    "divergence at round {round} is outside the cadence \
                     window [{at}, {})",
                    at + cadence,
                );
            }
            // Any other error means the ground-truth referee caught the
            // corruption (overlapping placement) before the next sweep.
            Ok(Err(_)) => {}
        }
    }

    // The direct contract behind the cadence bound: planting a fault
    // flips the mirror check from `Clean` to `Divergent` immediately.
    #[test]
    fn a_planted_fault_is_visible_to_the_very_next_mirror_check(
        seed in 0u64..(1 << 48),
        roll in 0u64..u64::MAX,
        substrate_idx in 0usize..Substrate::ALL.len(),
        kind_idx in 0usize..MIRRORED.len(),
    ) {
        let substrate = Substrate::ALL[substrate_idx];
        let kind = MIRRORED[kind_idx];
        let params = Params::new(M, LOG_N, 2).expect("valid params");
        let manager = kind.try_build(&params).expect("mirrored kinds build");
        let heap = Heap::non_moving().with_substrate(substrate);
        let mut exec = Execution::new(heap, churn(seed), manager);
        exec.run_summary().expect("fault-free churn completes");
        let (heap, _, mut manager) = exec.into_parts();
        prop_assert!(matches!(
            manager.mirror_check(heap.space()),
            MirrorCheck::Clean
        ));
        let planted = manager.inject_mirror_fault(roll, heap.space());
        prop_assert!(planted, "a finished churn run leaves live objects");
        prop_assert!(
            matches!(manager.mirror_check(heap.space()), MirrorCheck::Divergent(_)),
            "planted corruption invisible to {kind} mirror check on {substrate}",
        );
    }
}

/// Kinds without a mirror opt out explicitly rather than silently: the
/// check reports `Unsupported` and injection reports `false`, so the
/// engine never believes it planted a fault it cannot detect.
#[test]
fn unmirrored_kinds_decline_injection_instead_of_lying() {
    let params = Params::new(M, LOG_N, 2).expect("valid params");
    for kind in [ManagerKind::Buddy, ManagerKind::Segregated] {
        let manager = kind.try_build(&params).expect("builds");
        let heap = Heap::non_moving();
        let mut exec = Execution::new(heap, churn(7), manager);
        exec.run_summary().expect("fault-free churn completes");
        let (heap, _, mut manager) = exec.into_parts();
        assert!(
            !manager.inject_mirror_fault(42, heap.space()),
            "{kind} accepted an injection it cannot mirror-check"
        );
        assert!(matches!(
            manager.mirror_check(heap.space()),
            MirrorCheck::Unsupported
        ));
    }
}
