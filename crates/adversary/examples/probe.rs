//! Quick probe: run P_F against the manager suite at scaled parameters and
//! print measured waste factors next to Theorem 1's bound.

use pcb_adversary::{optimal_rho, PfConfig, PfProgram};
use pcb_alloc::ManagerKind;
use pcb_heap::{Execution, Heap, Params};

fn main() {
    let (m, log_n) = (1u64 << 16, 12u32);
    for c in [10u64, 20, 50, 100] {
        let (rho, h) = optimal_rho(m, log_n, c).unwrap();
        println!("c={c} rho={rho} h={h:.3} x={:.4}", {
            let cfg = PfConfig::new(m, log_n, c).unwrap();
            cfg.x()
        });
        for kind in ManagerKind::ALL {
            let cfg = PfConfig::new(m, log_n, c).unwrap().with_validation();
            let program = PfProgram::new(cfg);
            let heap = Heap::new(c);
            let params = Params::new(m, log_n, c).unwrap();
            let mut exec = Execution::new(heap, program, kind.build(&params));
            match exec.run() {
                Ok(report) => {
                    let viol = exec.program().violations().len();
                    println!(
                        "  {:16} HS/M = {:.3}  moved = {:.4}  q1={} q2={} viol={}",
                        report.manager,
                        report.waste_factor,
                        report.moved_fraction,
                        exec.program().q1_words(),
                        exec.program().q2_words(),
                        viol,
                    );
                }
                Err(e) => println!("  {:16} FAILED: {e}", kind.name()),
            }
        }
    }
}
