//! Property-based tests for the adversaries and their analysis machinery.

use proptest::prelude::*;

use pcb_adversary::{is_f_occupying, optimal_rho, waste_factor, Association, PfConfig, PfProgram};
use pcb_alloc::ManagerKind;
use pcb_heap::{Addr, Execution, Heap, ObjectId, Size};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn occupancy_agrees_with_brute_force(
        addr in 0u64..512,
        size in 1u64..64,
        i in 0u32..7,
        f_raw in 0u64..128,
    ) {
        let chunk = 1u64 << i;
        let f = f_raw % chunk;
        let brute = (addr..addr + size).any(|w| w % chunk == f);
        prop_assert_eq!(
            is_f_occupying(Addr::new(addr), Size::new(size), f, i),
            brute
        );
    }

    #[test]
    fn waste_factor_is_sane(
        log_m_extra in 6u32..12,
        log_n in 6u32..16,
        c in 3u64..200,
    ) {
        let m = 1u64 << (log_n + log_m_extra);
        if let Some((rho, h)) = optimal_rho(m, log_n, c) {
            prop_assert!(h.is_finite());
            // The bound can never beat full compaction's factor 1... it can
            // be below 1 for extreme parameters where the formula is weak,
            // but must never be absurd.
            prop_assert!(h > 0.0 && h < 64.0, "h = {h}");
            prop_assert!(pcb_adversary::rho_feasible(log_n, c, rho));
            // h is the max over feasible rho.
            for r in 1..12 {
                if let Some(h2) = waste_factor(m, log_n, c, r) {
                    prop_assert!(h2 <= h + 1e-12);
                }
            }
        }
    }

    #[test]
    fn association_invariants_under_random_ops(
        seed_objects in proptest::collection::vec((0u64..32, 1u64..16), 1..24),
        steps in 1u32..4,
    ) {
        let mut a = Association::new(5, 2);
        for (i, &(chunk, words)) in seed_objects.iter().enumerate() {
            a.associate_whole(chunk, ObjectId::from_raw(i as u64), words, true);
        }
        a.check_invariants().map_err(TestCaseError::fail)?;
        let mut last_u = a.u_sum();
        for _ in 0..steps {
            let freed = a.shed_density_surplus();
            a.check_invariants().map_err(TestCaseError::fail)?;
            // Claim 4.16(1): shedding never decreases u. Objects are shed
            // only from chunks that stay at or above the saturation
            // density, so their u_D is unchanged; half reassignment can
            // only add mass to the partner chunk.
            prop_assert!(a.u_sum() >= last_u);
            for id in freed {
                prop_assert!(!a.is_associated(id));
            }
            last_u = a.u_sum();
            a.advance_step();
            a.check_invariants().map_err(TestCaseError::fail)?;
            // Claim 4.16(1) for step changes: merging chunks never
            // decreases u.
            prop_assert!(a.u_sum() >= last_u);
            last_u = a.u_sum();
        }
    }

    #[test]
    fn pf_defeats_managers_at_random_scales(
        log_n in 8u32..11,
        m_factor in 4u32..8,
        c in prop_oneof![Just(10u64), Just(20), Just(40)],
        kind_pick in 0usize..10,
    ) {
        let m = 1u64 << (log_n + m_factor);
        let kind = ManagerKind::ALL[kind_pick];
        let Ok(cfg) = PfConfig::new(m, log_n, c) else {
            return Ok(()); // infeasible corner, nothing to test
        };
        let cfg = cfg.with_validation();
        let h = cfg.h;
        let mut exec = Execution::new(
            Heap::new(c),
            PfProgram::new(cfg),
            kind.build(&pcb_heap::Params::new(m, log_n, c).expect("valid")),
        );
        let report = exec.run().map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
        prop_assert!(
            report.waste_factor >= h * 0.9,
            "{kind} c={c} m={m} log_n={log_n}: waste {} < h {h}",
            report.waste_factor
        );
        prop_assert!(exec.program().violations().is_empty(),
            "{:?}", exec.program().violations());
        if let Some(u) = exec.program().potential() {
            prop_assert!(u <= report.heap_size as i128);
        }
    }
}
