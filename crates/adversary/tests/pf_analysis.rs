//! Integration tests: the paper's analysis (Section 4) as executable
//! checks over full `P_F` runs against the entire manager suite.

use pcb_adversary::{optimal_rho, PfConfig, PfProgram, PfVariant, RobsonProgram};
use pcb_alloc::ManagerKind;
use pcb_heap::{Execution, Heap, Params, Program, Report};

const M: u64 = 1 << 14;
const LOG_N: u32 = 10;

fn run_pf(kind: ManagerKind, c: u64, variant: PfVariant) -> (Report, PfProgram) {
    let cfg = PfConfig::new(M, LOG_N, c)
        .expect("feasible")
        .with_variant(variant)
        .with_validation();
    let mut exec = Execution::new(
        Heap::new(c),
        PfProgram::new(cfg),
        kind.build(&Params::new(M, LOG_N, c).expect("valid")),
    );
    let report = exec.run().expect("P_F runs to completion");
    let (_, program, _) = exec.into_parts();
    (report, program)
}

#[test]
fn theorem_1_holds_for_every_manager_in_the_suite() {
    // The lower bound says: EVERY c-partial manager serving P_F uses heap
    // at least M·h. (The tiny tolerance absorbs floor effects at this
    // scaled-down M; at the paper's parameters the slack vanishes.)
    for c in [10u64, 20, 50] {
        let (_, h) = optimal_rho(M, LOG_N, c).unwrap();
        for kind in ManagerKind::ALL {
            let (report, program) = run_pf(kind, c, PfVariant::FULL);
            assert!(
                report.waste_factor >= h * 0.95,
                "c={c} {kind}: waste {} < h {h}",
                report.waste_factor
            );
            assert!(
                program.violations().is_empty(),
                "c={c} {kind}: {:?}",
                program.violations()
            );
        }
    }
}

#[test]
fn potential_is_a_lower_bound_on_heap_size() {
    // u(t_finish) ≤ HS: the potential never overstates the heap.
    for c in [10u64, 50] {
        for kind in ManagerKind::ALL {
            let (report, program) = run_pf(kind, c, PfVariant::FULL);
            let u = program.potential().expect("stage II ran");
            assert!(
                u <= report.heap_size as i128,
                "c={c} {kind}: u = {u} > HS = {}",
                report.heap_size
            );
            assert!(u > 0, "c={c} {kind}: the potential should be substantial");
        }
    }
}

#[test]
fn budget_is_always_respected() {
    for c in [10u64, 20] {
        for kind in ManagerKind::COMPACTING {
            let (report, _) = run_pf(kind, c, PfVariant::FULL);
            assert!(
                report.moved_fraction <= 1.0 / c as f64 + 1e-12,
                "c={c} {kind}: moved {}",
                report.moved_fraction
            );
        }
    }
}

#[test]
fn lemma_4_5_stage_one_potential() {
    // Run P_F round by round; at the end of stage I (the first stage-II
    // round builds the association), the potential must be at least
    // M(ρ+2)/2 − 2^ρ·q₁ − n/4.
    let c = 50u64;
    let cfg = PfConfig::new(M, LOG_N, c).unwrap().with_validation();
    let rho = cfg.rho;
    let mut exec = Execution::new(
        Heap::new(c),
        PfProgram::new(cfg),
        ManagerKind::FirstFit.build(&Params::new(M, LOG_N, c).expect("valid")),
    );
    let mut obs = pcb_heap::NullObserver;
    // Rounds 0..=2ρ−1 are stage I; round 2ρ starts stage II. Run through
    // round 2ρ (whose shed/alloc only increase u).
    for _ in 0..=(2 * rho) {
        exec.step_round(&mut obs).unwrap();
    }
    let program = exec.program();
    let u = program.potential().expect("association built") as f64;
    let q1 = program.q1_words() as f64;
    let n = (1u64 << LOG_N) as f64;
    let bound = M as f64 * (rho as f64 + 2.0) / 2.0 - (1u64 << rho) as f64 * q1 - n / 4.0;
    assert!(
        u >= bound * 0.98,
        "u(t_first)+ = {u} < Lemma 4.5 bound {bound}"
    );
}

#[test]
fn lemma_4_5_stage_one_allocation_cap() {
    // s₁ ≤ M·(ρ + 1 − ½ Σ i/(2^i−1)).
    let c = 50u64;
    let (report, program) = run_pf(ManagerKind::FirstFit, c, PfVariant::FULL);
    let rho = program.config().rho;
    let cap = M as f64 * pcb_adversary::stage1_alloc_fraction(rho);
    assert!(
        (program.s1_words() as f64) <= cap + 1.0,
        "s1 = {} > {cap}",
        program.s1_words()
    );
    assert!(report.words_placed >= program.s1_words() + program.s2_words());
}

#[test]
fn ablation_variants_all_complete_and_fragment() {
    // The §3.1 improvements strengthen the *provable* bound h (they make
    // the worst case analyzable); against any one concrete manager the
    // empirical ordering can go either way — e.g. the greedy baseline
    // allocates more per step and can out-fragment the regimented program
    // against a dumb non-mover. What must hold: every variant completes,
    // respects M, and produces substantial fragmentation.
    for kind in [ManagerKind::FirstFit, ManagerKind::CompactingBp11] {
        let c = 20;
        for variant in [PfVariant::FULL, PfVariant::BASELINE] {
            let (report, program) = run_pf(kind, c, variant);
            assert!(
                report.waste_factor > 1.5,
                "{kind} {variant:?}: waste {}",
                report.waste_factor
            );
            assert!(report.peak_live <= M);
            assert!(program.s2_words() > 0, "stage II ran");
        }
    }
}

#[test]
fn ghosts_neutralize_stage_one_compaction() {
    // Against an aggressively compacting manager, stage I still finishes
    // and the run completes with the association built.
    let c = 10;
    let (report, program) = run_pf(ManagerKind::PagesThm2, c, PfVariant::FULL);
    assert!(program.association().is_some());
    assert!(report.rounds >= program.config().last_step());
    // Compacted words were all charged to a stage.
    assert_eq!(report.words_moved, program.q1_words() + program.q2_words());
}

#[test]
fn robson_program_beats_its_bound_on_every_non_moving_manager() {
    let m = 1u64 << 12;
    let log_n = 6;
    let bound = RobsonProgram::robson_lower_bound(m, log_n);
    for kind in ManagerKind::NON_MOVING {
        let program = RobsonProgram::new(m, log_n);
        let mut exec = Execution::new(
            Heap::non_moving(),
            program,
            kind.build(&Params::new(m, log_n, 10).expect("valid")),
        );
        let report = exec.run().expect("P_R runs");
        assert!(
            report.heap_size as f64 >= bound,
            "{kind}: HS {} < Robson bound {bound}",
            report.heap_size
        );
    }
}

#[test]
fn association_invariants_hold_at_every_step() {
    // Step the execution manually and check the association after every
    // round of stage II.
    let c = 20u64;
    let cfg = PfConfig::new(M, LOG_N, c).unwrap().with_validation();
    let mut exec = Execution::new(
        Heap::new(c),
        PfProgram::new(cfg),
        ManagerKind::CompactingBp11.build(&Params::new(M, LOG_N, c).expect("valid")),
    );
    let mut obs = pcb_heap::NullObserver;
    let mut last_u: i128 = i128::MIN;
    let mut checked = 0;
    while !exec.program().finished() {
        exec.step_round(&mut obs).unwrap();
        if let Some(assoc) = exec.program().association() {
            assoc.check_invariants().unwrap_or_else(|e| {
                panic!("round {}: {e}", exec.rounds());
            });
            let u = exec.program().potential().unwrap();
            assert!(u >= last_u, "u decreased across rounds: {last_u} -> {u}");
            last_u = u;
            checked += 1;
        }
    }
    assert!(checked > 1, "stage II must span multiple rounds");
    assert!(exec.program().violations().is_empty());
}

#[test]
fn claim_4_8_stage_one_mirrors_robsons_program_without_compaction() {
    // Against a non-moving manager no ghosts arise, so P_F's stage I and
    // Robson's P_R must make the *identical* allocation sequence round by
    // round (Claim 4.8's one-to-one mapping, specialized to the
    // compaction-free execution).
    use pcb_heap::{Event, Recorder};
    let c = 50u64;
    let cfg = PfConfig::new(M, LOG_N, c).unwrap();
    let rho = cfg.rho;

    fn placements_per_round(rec: &Recorder) -> Vec<Vec<u64>> {
        let mut rounds: Vec<Vec<u64>> = Vec::new();
        for (_, e) in rec.events() {
            match e {
                Event::RoundStart { .. } => rounds.push(Vec::new()),
                Event::Placed { size, .. } => {
                    rounds.last_mut().unwrap().push(size.get());
                }
                _ => {}
            }
        }
        rounds
    }

    let mut rec_pf = Recorder::new();
    let mut exec = Execution::new(
        Heap::non_moving(),
        PfProgram::new(cfg),
        ManagerKind::FirstFit.build(&Params::new(M, LOG_N, c).expect("valid")),
    );
    // Run only stage I (rounds 0..=rho).
    for _ in 0..=rho {
        exec.step_round(&mut rec_pf).unwrap();
    }

    let mut rec_pr = Recorder::new();
    let mut exec_pr = Execution::new(
        Heap::non_moving(),
        RobsonProgram::new(M, LOG_N),
        ManagerKind::FirstFit.build(&Params::new(M, LOG_N, c).expect("valid")),
    );
    for _ in 0..=rho {
        exec_pr.step_round(&mut rec_pr).unwrap();
    }

    let pf_rounds = placements_per_round(&rec_pf);
    let pr_rounds = placements_per_round(&rec_pr);
    assert_eq!(
        pf_rounds, pr_rounds,
        "stage I must replicate Robson's allocation sequence"
    );
    let _ = exec; // keep the execution alive for clarity
}

#[test]
fn lemma_4_6_potential_growth_in_stage_two() {
    // Lemma 4.6: u(t_finish) − u(t_first) ≥ ¾·s₂ − 2^ρ·q₂. Step the run,
    // snapshot u at the stage transition, and compare at the end.
    for kind in [ManagerKind::FirstFit, ManagerKind::PagesThm2] {
        let c = 20u64;
        let cfg = PfConfig::new(M, LOG_N, c).unwrap().with_validation();
        let rho = cfg.rho;
        let mut exec = Execution::new(
            Heap::new(c),
            PfProgram::new(cfg),
            kind.build(&Params::new(M, LOG_N, c).expect("valid")),
        );
        let mut obs = pcb_heap::NullObserver;
        let mut u_first: Option<i128> = None;
        while !exec.program().finished() {
            exec.step_round(&mut obs).unwrap();
            if u_first.is_none() {
                if let Some(u) = exec.program().potential() {
                    // The first stage-II round has just run (it is what
                    // created the association), so this snapshot includes
                    // that round's growth; the comparison below excludes
                    // the first round's allocation volume accordingly.
                    u_first = Some(u);
                }
            }
        }
        let program = exec.program();
        let u_finish = program.potential().unwrap();
        let du = u_finish - u_first.unwrap();
        // u_first was sampled AFTER the first stage-II round, so compare
        // against the s2/q2 of the REMAINING rounds only is unavailable;
        // instead verify the weaker but still meaningful aggregate over
        // the whole stage with the first round's allocation removed.
        let first_round_s2 = ((program.config().x() * M as f64) as u64).min(program.s2_words());
        let s2_rest = program.s2_words() - first_round_s2;
        let bound = 0.75 * s2_rest as f64 - ((1u64 << rho) * program.q2_words()) as f64;
        assert!(
            du as f64 >= bound - 1.0,
            "{kind}: du = {du} < 3/4 s2' - 2^rho q2 = {bound}"
        );
    }
}

#[test]
fn stage_two_allocation_is_regimented_to_x_m_words_per_step() {
    // Line 14 (improvement 2): each stage-II step allocates close to x·M
    // words — never more, and never much less while the M budget allows.
    let c = 20u64;
    let cfg = PfConfig::new(M, LOG_N, c).unwrap();
    let (rho, x) = (cfg.rho, cfg.x());
    let last_step = cfg.last_step();
    let mut exec = Execution::new(
        Heap::new(c),
        PfProgram::new(cfg),
        ManagerKind::FirstFit.build(&Params::new(M, LOG_N, c).expect("valid")),
    );
    let mut obs = pcb_heap::NullObserver;
    let mut prev_s2 = 0u64;
    let mut round = 0u32;
    while !exec.program().finished() {
        exec.step_round(&mut obs).unwrap();
        round += 1;
        let step = round - 1; // the round just executed
        if step >= 2 * rho && step <= last_step {
            let s2 = exec.program().s2_words();
            let delta = s2 - prev_s2;
            let size = 1u64 << (step + 2);
            let target = x * M as f64;
            assert!(
                (delta as f64) <= target,
                "step {step}: allocated {delta} > x·M = {target}"
            );
            let _ = size;
            prev_s2 = s2;
        }
    }
    assert!(prev_s2 > 0, "stage II allocated something");

    // Claim 4.18 (aggregate form): either the manager already used more
    // than M·h space, or s₂ ≥ x·M·L − 2n where L = log n − 2ρ − 1.
    let report = exec.report();
    let (_, h) = optimal_rho(M, LOG_N, c).unwrap();
    let l = (last_step + 1 - 2 * rho) as f64;
    let claim = x * M as f64 * l - 2.0 * (1u64 << LOG_N) as f64;
    let s2 = exec.program().s2_words() as f64;
    assert!(
        report.waste_factor > h || s2 >= claim * 0.95,
        "Claim 4.18: HS/M = {} <= h = {h} yet s2 = {s2} < {claim}",
        report.waste_factor
    );
}
