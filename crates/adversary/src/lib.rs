//! The adversarial programs of **Cohen & Petrank, "Limitations of Partial
//! Compaction: Towards Practical Bounds" (PLDI 2013)**, as executable
//! [`pcb_heap::Program`]s, together with the paper's analysis machinery
//! (chunk association, the set `E`, the potential function `u(t)`) as
//! runtime-checkable state.
//!
//! * [`RobsonProgram`] — Robson's classic bad program `P_R` (Algorithm 2),
//!   which defeats every non-moving manager;
//! * [`PfProgram`] — the paper's program `P_F` (Algorithm 1): Robson
//!   stage I hardened with *ghost objects*, then density-controlled chunk
//!   fragmentation that defeats every c-partial manager;
//! * [`PfVariant`] — switches for the three improvements of Section 3.1,
//!   giving the POPL'11-style ablation baseline;
//! * [`Association`] — the object↔chunk association with half-object
//!   assignment and the incrementally maintained potential `u(t)`;
//! * [`waste_factor`]/[`optimal_rho`] — Theorem 1's bound `h(ρ; M, n, c)`.
//!
//! # Example
//!
//! Drive `P_F` against a compacting manager and compare the waste factor
//! with Theorem 1's bound:
//!
//! ```
//! use pcb_adversary::{optimal_rho, PfConfig, PfProgram};
//! use pcb_alloc::CompactingManager;
//! use pcb_heap::{Execution, Heap};
//!
//! let (m, log_n, c) = (1 << 12, 8, 10);
//! let cfg = PfConfig::new(m, log_n, c).expect("feasible parameters");
//! let mut exec = Execution::new(
//!     Heap::new(c),
//!     PfProgram::new(cfg),
//!     CompactingManager::new(c, m),
//! );
//! let report = exec.run()?;
//! // Theorem 1: every c-partial manager wastes at least h·M.
//! let (_, h) = optimal_rho(m, log_n, c).unwrap();
//! assert!(report.waste_factor >= h * 0.9, "close to the bound at least");
//! # Ok::<(), pcb_heap::ExecutionError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod association;
mod math;
mod occupancy;
mod pf;
mod robson_program;

pub use association::{Association, Entry};
pub use math::{
    optimal_rho, optimal_rho_memo, rho_feasible, stage1_alloc_fraction, stage2_alloc_fraction,
    waste_factor,
};
pub use occupancy::{
    choose_offset, first_occupying_word, is_f_occupying, offset_contribution, offset_score,
    OffsetTracker,
};
pub use pf::{PfConfig, PfProgram, PfVariant};
pub use robson_program::{RobsonProgram, StepSummary};
