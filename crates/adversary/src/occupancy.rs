//! The `f`-occupying predicate (Definition 4.2) and Robson's offset
//! selection rule.
//!
//! At step `i` the heap is viewed as aligned chunks of `2^i` words. An
//! object is *f-occupying* if it covers a word at address `k·2^i + f` for
//! some integer `k`. Robson's bad program keeps only f-occupying objects:
//! one such survivor per chunk blocks the chunk from serving any future
//! object of size `≥ 2^i`, while costing as few live words as possible.

use pcb_heap::{Addr, Size};

/// Whether the object `[addr, addr + size)` covers an address congruent to
/// `f` modulo `2^i`.
///
/// ```
/// use pcb_adversary::is_f_occupying;
/// use pcb_heap::{Addr, Size};
/// // Chunks of 4 (i = 2), offset 1: addresses 1, 5, 9, ...
/// assert!(is_f_occupying(Addr::new(0), Size::new(2), 1, 2)); // covers 1
/// assert!(!is_f_occupying(Addr::new(2), Size::new(2), 1, 2)); // covers 2,3
/// assert!(is_f_occupying(Addr::new(2), Size::new(4), 1, 2)); // covers 5
/// ```
pub fn is_f_occupying(addr: Addr, size: Size, f: u64, i: u32) -> bool {
    debug_assert!(!size.is_zero());
    let chunk = 1u64 << i;
    let f = f % chunk;
    if size.get() >= chunk {
        // A chunk-sized object covers every residue.
        return true;
    }
    // First address >= addr congruent to f (mod chunk).
    let rem = addr.get() % chunk;
    let delta = (f + chunk - rem) % chunk;
    delta < size.get()
}

/// The first `f`-occupying word of the object, if any.
pub fn first_occupying_word(addr: Addr, size: Size, f: u64, i: u32) -> Option<Addr> {
    let chunk = 1u64 << i;
    let f = f % chunk;
    let rem = addr.get() % chunk;
    let delta = (f + chunk - rem) % chunk;
    (delta < size.get()).then(|| Addr::new(addr.get() + delta))
}

/// Robson's offset-selection score: `Σ (2^i − |o|)` over `f`-occupying
/// objects. Maximizing it keeps the *smallest* possible survivors pinning
/// the *most* chunks.
pub fn offset_score<I>(objects: I, f: u64, i: u32) -> i128
where
    I: IntoIterator<Item = (Addr, Size)>,
{
    let chunk = 1i128 << i;
    objects
        .into_iter()
        .filter(|&(addr, size)| is_f_occupying(addr, size, f, i))
        .map(|(_, size)| chunk - size.get() as i128)
        .sum()
}

/// Picks the step-`i` offset per Robson's rule: `f ∈ {prev, prev + 2^(i-1)}`
/// maximizing [`offset_score`] (ties favour `prev`).
pub fn choose_offset<I>(objects: I, prev_f: u64, i: u32) -> u64
where
    I: IntoIterator<Item = (Addr, Size)> + Clone,
{
    debug_assert!(i >= 1);
    let cand = prev_f + (1u64 << (i - 1));
    let keep = offset_score(objects.clone(), prev_f, i);
    let flip = offset_score(objects, cand, i);
    if flip > keep {
        cand
    } else {
        prev_f
    }
}

/// One object's contribution to [`offset_score`]: `2^i − |o|` if the
/// object is `f`-occupying, zero otherwise.
pub fn offset_contribution(addr: Addr, size: Size, f: u64, i: u32) -> i128 {
    if is_f_occupying(addr, size, f, i) {
        (1i128 << i) - size.get() as i128
    } else {
        0
    }
}

/// Incremental form of [`choose_offset`]: maintains the two candidate
/// scores for the *upcoming* step as objects enter and leave the
/// inventory, so the per-step choice costs O(1) instead of two full
/// passes over the live set.
///
/// After choosing `f_i` at step `i`, the step-`i+1` candidates are known
/// (`f_i` and `f_i + 2^i`), so their scores can be accumulated while the
/// step-`i` survivors are enumerated and as later allocations arrive.
/// Integer addition is exact and commutative, so the incrementally
/// maintained scores are bit-identical to the batch computation.
///
/// ```
/// use pcb_adversary::{choose_offset, OffsetTracker};
/// use pcb_heap::{Addr, Size};
/// let objs = vec![(Addr::new(1), Size::new(1)), (Addr::new(3), Size::new(1))];
/// let mut t = OffsetTracker::new();
/// for &(a, s) in &objs {
///     t.add(a, s);
/// }
/// assert_eq!(t.choose(), choose_offset(objs, 0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct OffsetTracker {
    /// The step whose offset will be chosen next.
    step: u32,
    /// Candidate `f = f_{i−1}` (keep) and its score.
    keep: u64,
    score_keep: i128,
    /// Candidate `f = f_{i−1} + 2^{i−1}` (flip) and its score.
    flip: u64,
    score_flip: i128,
}

impl Default for OffsetTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl OffsetTracker {
    /// A tracker ready for step 1 with `f_0 = 0` (candidates 0 and 1).
    pub fn new() -> Self {
        OffsetTracker {
            step: 1,
            keep: 0,
            score_keep: 0,
            flip: 1,
            score_flip: 0,
        }
    }

    /// The step whose offset [`choose`](Self::choose) will produce.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Accounts for an object entering the inventory.
    pub fn add(&mut self, addr: Addr, size: Size) {
        self.score_keep += offset_contribution(addr, size, self.keep, self.step);
        self.score_flip += offset_contribution(addr, size, self.flip, self.step);
    }

    /// Accounts for an object leaving the inventory.
    pub fn remove(&mut self, addr: Addr, size: Size) {
        self.score_keep -= offset_contribution(addr, size, self.keep, self.step);
        self.score_flip -= offset_contribution(addr, size, self.flip, self.step);
    }

    /// The winning offset for the current step (ties keep the previous
    /// offset, exactly as [`choose_offset`]).
    pub fn choose(&self) -> u64 {
        if self.score_flip > self.score_keep {
            self.flip
        } else {
            self.keep
        }
    }

    /// Resets the tracker for `next_step` after `f` was chosen; the caller
    /// re-[`add`](Self::add)s the surviving inventory (typically folded
    /// into the pass that enumerates survivors anyway).
    pub fn advance(&mut self, f: u64, next_step: u32) {
        debug_assert!(next_step > self.step);
        self.step = next_step;
        self.keep = f;
        self.flip = f + (1u64 << (next_step - 1));
        self.score_keep = 0;
        self.score_flip = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_sized_objects_always_occupy() {
        for f in 0..8 {
            assert!(is_f_occupying(Addr::new(5), Size::new(8), f, 3));
            assert!(is_f_occupying(Addr::new(5), Size::new(9), f, 3));
        }
    }

    #[test]
    fn single_words_occupy_their_own_residue() {
        for a in 0..16u64 {
            for f in 0..8u64 {
                assert_eq!(
                    is_f_occupying(Addr::new(a), Size::new(1), f, 3),
                    a % 8 == f,
                    "a={a} f={f}"
                );
            }
        }
    }

    #[test]
    fn occupying_matches_brute_force() {
        for a in 0..32u64 {
            for s in 1..16u64 {
                for i in 0..5u32 {
                    for f in 0..(1u64 << i) {
                        let brute = (a..a + s).any(|w| w % (1 << i) == f);
                        assert_eq!(
                            is_f_occupying(Addr::new(a), Size::new(s), f, i),
                            brute,
                            "a={a} s={s} f={f} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn first_word_is_occupying_and_minimal() {
        for a in 0..16u64 {
            for s in 1..8u64 {
                for f in 0..4u64 {
                    let got = first_occupying_word(Addr::new(a), Size::new(s), f, 2);
                    let brute = (a..a + s).find(|w| w % 4 == f);
                    assert_eq!(got.map(Addr::get), brute, "a={a} s={s} f={f}");
                }
            }
        }
    }

    #[test]
    fn offset_choice_prefers_more_small_survivors() {
        // Chunks of 2 (i=1), prev f=0. Objects: three 1-word at odd
        // addresses, one 1-word at an even address. Offset 1 scores
        // 3*(2-1)=3 > 1, so choose 1.
        let objs = vec![
            (Addr::new(1), Size::new(1)),
            (Addr::new(3), Size::new(1)),
            (Addr::new(5), Size::new(1)),
            (Addr::new(4), Size::new(1)),
        ];
        assert_eq!(choose_offset(objs.clone(), 0, 1), 1);
        assert_eq!(offset_score(objs.clone(), 1, 1), 3);
        assert_eq!(offset_score(objs, 0, 1), 1);
    }

    #[test]
    fn ties_keep_previous_offset() {
        let objs = vec![(Addr::new(0), Size::new(1)), (Addr::new(1), Size::new(1))];
        assert_eq!(choose_offset(objs, 0, 1), 0);
    }

    #[test]
    fn tracker_matches_batch_choice_across_steps() {
        // Drive a multi-step churn script through both the batch rule and
        // the incremental tracker; the chosen offsets must agree exactly
        // (including ties) at every step.
        let mut objects: Vec<(Addr, Size)> = Vec::new();
        let mut tracker = OffsetTracker::new();
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        // Initial fill.
        for k in 0..200u64 {
            let obj = (Addr::new(k), Size::new(1));
            objects.push(obj);
            tracker.add(obj.0, obj.1);
        }
        let mut f = 0u64;
        for i in 1..=6u32 {
            assert_eq!(tracker.step(), i);
            let batch = choose_offset(objects.clone(), f, i);
            assert_eq!(tracker.choose(), batch, "step {i}");
            f = batch;
            // Free the non-occupying, re-seed the tracker from survivors.
            objects.retain(|&(a, s)| is_f_occupying(a, s, f, i));
            tracker.advance(f, i + 1);
            for &(a, s) in &objects {
                tracker.add(a, s);
            }
            // Allocate a pseudo-random batch for the next step.
            for _ in 0..40 {
                let obj = (Addr::new(next() % 512), Size::new(1 + next() % (1 << i)));
                objects.push(obj);
                tracker.add(obj.0, obj.1);
            }
            // And move a few (remove + add, as P_R's moved handler does).
            for _ in 0..5 {
                let idx = (next() as usize) % objects.len();
                let (old, size) = objects[idx];
                let moved = (Addr::new((old.get() + next() % 64) % 512), size);
                tracker.remove(old, size);
                tracker.add(moved.0, moved.1);
                objects[idx] = moved;
            }
        }
    }

    #[test]
    fn big_objects_discourage_their_offset() {
        // i=2: a 3-word object at 0 covers residues 0,1,2; a 1-word object
        // at 7 covers residue 3. Score(f=0) = 4-3 = 1; score(f=2) = 1;
        // with prev=0 the candidate is f=2: tie keeps 0. With prev=1 the
        // candidate is f=3: score(f=3) = 4-1 = 3 > score(f=1) = 1.
        let objs = vec![(Addr::new(0), Size::new(3)), (Addr::new(7), Size::new(1))];
        assert_eq!(choose_offset(objs.clone(), 0, 2), 0);
        assert_eq!(choose_offset(objs, 1, 2), 3);
    }
}
