//! The waste-factor formula of Theorem 1 and the derived allocation
//! fraction `x` used by Algorithm 1 (program `P_F`).
//!
//! For a density exponent `ρ` (the program maintains per-chunk density
//! `2^-ρ`), Theorem 1 states that every c-partial manager serving `P_F`
//! needs heap at least `M · h(ρ; M, n, c)` with
//!
//! ```text
//!       (ρ+2)/2 − (2^ρ/c)·S₁ + β·L/(ρ+1) − 2n/M
//! h = ─────────────────────────────────────────────
//!            1 + 2^{−ρ}·β·L/(ρ+1)
//!
//! S₁ = ρ + 1 − ½·Σ_{i=1..ρ} i/(2^i − 1)      (Lemma 4.5's s₁/M bound)
//! β  = 3/4 − 2^ρ/c                            (Claim 4.16's growth rate)
//! L  = log₂(n) − 2ρ − 1                       (number of stage-II steps)
//! ```
//!
//! valid for integer `ρ` with `1 ≤ ρ ≤ log₂(3c/4)` (so that the chunk
//! density `2^-ρ` stays above `1/c` — evacuating a dense-enough chunk
//! never pays for the manager) and `2ρ ≤ log₂(n) − 2` (so stage II has at
//! least one step).
//!
//! The formula was recovered from the paper symbol-by-symbol and validated
//! against the values the paper itself quotes for `M = 2^28`, `n = 2^20`:
//! `h ≈ 2.0` at `c = 10`, `≈ 3.15` at `c = 50`, `≈ 3.5` at `c = 100`
//! (see the tests below and EXPERIMENTS.md).

/// `S₁ = ρ + 1 − ½·Σ_{i=1..ρ} i/(2^i − 1)`: the Lemma 4.5 bound on the
/// fraction `s₁/M` of words allocated during stage I.
pub fn stage1_alloc_fraction(rho: u32) -> f64 {
    let sum: f64 = (1..=rho).map(|i| i as f64 / ((1u64 << i) - 1) as f64).sum();
    rho as f64 + 1.0 - 0.5 * sum
}

/// Whether `(rho, c, log_n)` satisfies Theorem 1's side conditions.
pub fn rho_feasible(log_n: u32, c: u64, rho: u32) -> bool {
    rho >= 1
        && (1u128 << rho) * 4 <= 3 * c as u128 // 2^ρ ≤ 3c/4
        && 2 * rho + 2 <= log_n // stage II is non-empty
}

/// The waste factor `h(ρ; M, n, c)` of Theorem 1 for a specific `ρ`.
///
/// Returns `None` when `ρ` is infeasible (see [`rho_feasible`]).
///
/// ```
/// use pcb_adversary::waste_factor;
/// // The paper's example at c = 100, rho = 3: about 3.49.
/// let h = waste_factor(1 << 28, 20, 100, 3).unwrap();
/// assert!((h - 3.49).abs() < 0.01);
/// assert_eq!(waste_factor(1 << 28, 20, 100, 7), None); // 2^7 > 3c/4
/// ```
///
/// # Panics
///
/// Panics if `m == 0`, `log_n == 0`, or `c < 2`.
pub fn waste_factor(m: u64, log_n: u32, c: u64, rho: u32) -> Option<f64> {
    assert!(m > 0, "live bound M must be positive");
    assert!(log_n > 0, "n must exceed the unit object size");
    assert!(c >= 2, "compaction bound c must be at least 2");
    if !rho_feasible(log_n, c, rho) {
        return None;
    }
    let n = (1u128 << log_n) as f64;
    let two_rho = (1u128 << rho) as f64;
    let beta = 0.75 - two_rho / c as f64;
    let l = log_n as f64 - 2.0 * rho as f64 - 1.0;
    let per_step = beta * l / (rho as f64 + 1.0);
    let num = (rho as f64 + 2.0) / 2.0 - (two_rho / c as f64) * stage1_alloc_fraction(rho)
        + per_step
        - 2.0 * n / m as f64;
    let den = 1.0 + per_step / two_rho;
    Some(num / den)
}

/// The best feasible `(ρ, h)` for the given parameters: Theorem 1's bound
/// is `max` over feasible `ρ`, and only a handful of integer values are
/// ever feasible, so exhaustive search is exact.
///
/// Returns `None` if no `ρ` is feasible (e.g. tiny `n` or `c < 3`).
///
/// ```
/// use pcb_adversary::optimal_rho;
/// let (rho, h) = optimal_rho(1 << 28, 20, 10).unwrap();
/// assert_eq!(rho, 2);
/// assert!((h - 2.0).abs() < 0.05); // the paper's "2x at 10%"
/// ```
pub fn optimal_rho(m: u64, log_n: u32, c: u64) -> Option<(u32, f64)> {
    (1..=log_n)
        .filter_map(|rho| waste_factor(m, log_n, c, rho).map(|h| (rho, h)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

type RhoMemo = std::collections::HashMap<(u64, u32, u64), Option<(u32, f64)>>;

std::thread_local! {
    /// Per-thread memo for [`optimal_rho`]: fleet shards instantiate
    /// thousands of tenants that share a handful of `(M, log n, c)`
    /// shapes, so each shard computes every distinct feasibility search
    /// once. Thread-local (rather than a shared lock) keeps shard
    /// execution contention-free and the cache drops with the thread.
    static RHO_MEMO: std::cell::RefCell<RhoMemo> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Memoized [`optimal_rho`]: identical result (the search is a pure
/// function of its arguments), cached per thread under the `(m, log_n, c)`
/// key. Use on hot paths that build many [`PfConfig`](crate::PfConfig)s
/// with repeated parameter shapes.
pub fn optimal_rho_memo(m: u64, log_n: u32, c: u64) -> Option<(u32, f64)> {
    RHO_MEMO.with(|memo| {
        *memo
            .borrow_mut()
            .entry((m, log_n, c))
            .or_insert_with(|| optimal_rho(m, log_n, c))
    })
}

/// The stage-II allocation fraction `x = (1 − 2^{−ρ}·h)/(ρ+1)` computed at
/// the top of Algorithm 1 (clamped at 0: a non-positive `x` means the
/// theorem's bound already exceeds what stage II could add).
pub fn stage2_alloc_fraction(h: f64, rho: u32) -> f64 {
    let x = (1.0 - h / (1u64 << rho) as f64) / (rho as f64 + 1.0);
    x.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's realistic parameters: M = 256 MB, n = 1 MB (in words:
    /// 2^28 and 2^20).
    const M: u64 = 1 << 28;
    const LOG_N: u32 = 20;

    #[test]
    fn stage1_fraction_small_cases() {
        assert!((stage1_alloc_fraction(1) - 1.5).abs() < 1e-12); // 2 - 1/2
                                                                 // rho=2: 3 - 0.5*(1 + 2/3)
        assert!((stage1_alloc_fraction(2) - (3.0 - 0.5 * (1.0 + 2.0 / 3.0))).abs() < 1e-12);
    }

    #[test]
    fn feasibility_boundaries() {
        // 2^ρ ≤ 3c/4: c=10 -> 2^ρ ≤ 7.5 -> ρ ≤ 2.
        assert!(rho_feasible(LOG_N, 10, 2));
        assert!(!rho_feasible(LOG_N, 10, 3));
        // c=100 -> 2^ρ ≤ 75 -> ρ ≤ 6.
        assert!(rho_feasible(LOG_N, 100, 6));
        assert!(!rho_feasible(LOG_N, 100, 7));
        // Stage II: 2ρ + 2 ≤ log n.
        assert!(rho_feasible(10, 100, 4));
        assert!(!rho_feasible(9, 100, 4));
        // ρ ≥ 1.
        assert!(!rho_feasible(LOG_N, 100, 0));
    }

    #[test]
    fn reproduces_the_papers_quoted_values() {
        // Section 1: "2x ... when 10% of the allocated space can be
        // compacted" (c = 10).
        let (_, h10) = optimal_rho(M, LOG_N, 10).unwrap();
        assert!((h10 - 2.0).abs() < 0.05, "c=10: h = {h10}");
        // Section 2.3: "when compaction of 2% of all allocated space is
        // allowed (c = 50) ... at least 3.15 · M".
        let (_, h50) = optimal_rho(M, LOG_N, 50).unwrap();
        assert!((h50 - 3.15).abs() < 0.05, "c=50: h = {h50}");
        // Section 1: "when the compaction is limited to 1% ... 3.5x"
        // (c = 100).
        let (_, h100) = optimal_rho(M, LOG_N, 100).unwrap();
        assert!((h100 - 3.5).abs() < 0.06, "c=100: h = {h100}");
    }

    #[test]
    fn optimal_rho_beats_every_fixed_rho() {
        for c in [10u64, 20, 50, 100] {
            let (best_rho, best_h) = optimal_rho(M, LOG_N, c).unwrap();
            assert!(rho_feasible(LOG_N, c, best_rho));
            for rho in 1..=8 {
                if let Some(h) = waste_factor(M, LOG_N, c, rho) {
                    assert!(h <= best_h + 1e-12, "c={c} rho={rho}");
                }
            }
        }
    }

    #[test]
    fn bound_grows_with_c() {
        // Less compaction allowed (larger c) means more waste is forced.
        let hs: Vec<f64> = [10u64, 20, 40, 80]
            .iter()
            .map(|&c| optimal_rho(M, LOG_N, c).unwrap().1)
            .collect();
        for pair in hs.windows(2) {
            assert!(pair[0] < pair[1], "h must increase with c: {hs:?}");
        }
    }

    #[test]
    fn bound_grows_with_n() {
        // Figure 2's shape: larger max object size forces more waste
        // (c = 100, M = 256 n).
        let hs: Vec<f64> = [12u32, 16, 20, 24, 28]
            .iter()
            .map(|&log_n| optimal_rho(256u64 << log_n, log_n, 100).unwrap().1)
            .collect();
        for pair in hs.windows(2) {
            assert!(pair[0] < pair[1], "h must increase with n: {hs:?}");
        }
    }

    #[test]
    fn memoized_rho_matches_direct() {
        for c in [10u64, 50, 100] {
            assert_eq!(optimal_rho_memo(M, LOG_N, c), optimal_rho(M, LOG_N, c));
            // Second call hits the cache and must agree.
            assert_eq!(optimal_rho_memo(M, LOG_N, c), optimal_rho(M, LOG_N, c));
        }
        assert_eq!(optimal_rho_memo(M, 3, 100), None);
    }

    #[test]
    fn infeasible_parameters_yield_none() {
        assert_eq!(waste_factor(M, LOG_N, 10, 3), None);
        assert_eq!(waste_factor(M, 4, 100, 3), None);
        assert!(optimal_rho(M, 3, 100).is_none());
    }

    #[test]
    fn stage2_fraction_clamps() {
        assert_eq!(stage2_alloc_fraction(10.0, 1), 0.0);
        let x = stage2_alloc_fraction(2.0, 3);
        assert!((x - (1.0 - 0.25) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "compaction bound")]
    fn tiny_c_panics() {
        let _ = waste_factor(M, LOG_N, 1, 1);
    }
}
