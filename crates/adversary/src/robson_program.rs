//! Robson's bad program `P_R` (Algorithm 2 of the paper).
//!
//! Against any *non-moving* manager, `P_R` forces a heap of
//! `M·(½·log₂ n + 1) − n + 1` words (Robson 1974; quoted as the first
//! display of Section 2.2). It works in steps `i = 1..=log₂ n`: pick an
//! offset `f_i ∈ {f_{i−1}, f_{i−1} + 2^{i−1}}` maximizing the wasted space
//! `Σ (2^i − |o|)` over `f_i`-occupying objects, free everything else, and
//! fill the freed budget with `2^i`-word objects. Surviving objects pin
//! one word per `2^i`-chunk, so no freed chunk can ever serve a larger
//! object.

use std::collections::HashMap;

use pcb_heap::{Addr, MoveResponse, ObjectId, Program, Size};

use crate::occupancy::{is_f_occupying, OffsetTracker};

/// Robson's bad program `P_R`.
///
/// ```
/// use pcb_adversary::RobsonProgram;
/// // M(log n/2 + 1) - n + 1 at M = 4096, n = 64:
/// let bound = RobsonProgram::robson_lower_bound(4096, 6);
/// assert_eq!(bound, 4096.0 * 4.0 - 63.0);
/// ```
///
/// Note `P_R` assumes a non-moving manager (use
/// [`pcb_heap::Heap::non_moving`]); against a compacting manager, use
/// [`PfProgram`](crate::PfProgram), whose stage I is the
/// compaction-hardened version of this program.
#[derive(Debug)]
pub struct RobsonProgram {
    m: u64,
    steps: u32,
    round: u32,
    f: u64,
    live: HashMap<ObjectId, (Addr, Size)>,
    live_words: u64,
    /// Incrementally maintained candidate scores for the next offset
    /// choice (replaces the per-step full-inventory score passes).
    tracker: OffsetTracker,
    /// `(step, f, survivors, words_freed)` per step, for analysis.
    step_log: Vec<StepSummary>,
}

/// Per-step summary of a [`RobsonProgram`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepSummary {
    /// Step index `i`.
    pub step: u32,
    /// Chosen offset `f_i`.
    pub f: u64,
    /// Number of `f_i`-occupying survivors after the free phase.
    pub survivors: usize,
    /// Words freed in the step.
    pub words_freed: u64,
}

impl RobsonProgram {
    /// Creates the program with live bound `m` words and maximum object
    /// size `2^log_n` (so it runs steps `1..=log_n`).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2^log_n` (the program must be able to hold at least
    /// one largest object) or `log_n == 0`.
    pub fn new(m: u64, log_n: u32) -> Self {
        assert!(log_n > 0, "log_n must be positive");
        assert!(m >= 1 << log_n, "M must be at least n");
        RobsonProgram {
            m,
            steps: log_n,
            round: 0,
            f: 0,
            live: HashMap::new(),
            live_words: 0,
            tracker: OffsetTracker::new(),
            step_log: Vec::new(),
        }
    }

    /// Per-step summaries (populated as the run progresses).
    pub fn step_log(&self) -> &[StepSummary] {
        &self.step_log
    }

    /// The lower bound `P_R` realizes against non-moving managers:
    /// `M·(½·log₂ n + 1) − n + 1`.
    pub fn robson_lower_bound(m: u64, log_n: u32) -> f64 {
        m as f64 * (0.5 * log_n as f64 + 1.0) - (1u64 << log_n) as f64 + 1.0
    }
}

impl Program for RobsonProgram {
    fn name(&self) -> &str {
        "robson"
    }

    fn live_bound(&self) -> Size {
        Size::new(self.m)
    }

    fn frees(&mut self) -> Vec<ObjectId> {
        if self.round == 0 || self.round > self.steps {
            return Vec::new();
        }
        let i = self.round;
        debug_assert_eq!(self.tracker.step(), i);
        self.f = self.tracker.choose();
        let f = self.f;
        let mut freed: Vec<ObjectId> = self
            .live
            .iter()
            .filter(|(_, &(addr, size))| !is_f_occupying(addr, size, f, i))
            .map(|(&id, _)| id)
            .collect();
        freed.sort_unstable();
        let mut words = 0;
        for id in &freed {
            let (_, size) = self.live.remove(id).expect("selected from live");
            words += size.get();
            self.live_words -= size.get();
        }
        // Seed the step-(i+1) candidate scores from the survivors; later
        // allocations accumulate via `placed`.
        self.tracker.advance(f, i + 1);
        for &(addr, size) in self.live.values() {
            self.tracker.add(addr, size);
        }
        self.step_log.push(StepSummary {
            step: i,
            f,
            survivors: self.live.len(),
            words_freed: words,
        });
        freed
    }

    fn allocs(&mut self) -> Vec<Size> {
        if self.round > self.steps {
            return Vec::new();
        }
        if self.round == 0 {
            return vec![Size::WORD; self.m as usize];
        }
        let size = 1u64 << self.round;
        let count = (self.m - self.live_words) / size;
        vec![Size::new(size); count as usize]
    }

    fn placed(&mut self, id: ObjectId, addr: Addr, size: Size) {
        self.live.insert(id, (addr, size));
        self.live_words += size.get();
        self.tracker.add(addr, size);
    }

    fn moved(&mut self, id: ObjectId, from: Addr, to: Addr, size: Size) -> MoveResponse {
        // P_R is designed for non-moving managers; if one moves anyway we
        // just track the new location and keep the object.
        self.live.insert(id, (to, size));
        self.tracker.remove(from, size);
        self.tracker.add(to, size);
        MoveResponse::Keep
    }

    fn round_done(&mut self) {
        self.round += 1;
    }

    fn finished(&self) -> bool {
        self.round > self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcb_heap::{Execution, Heap};

    /// A bump allocator: the weakest possible victim.
    #[derive(Debug, Default)]
    struct Bump(u64);
    impl pcb_heap::MemoryManager for Bump {
        fn name(&self) -> &str {
            "bump"
        }
        fn place(
            &mut self,
            req: pcb_heap::AllocRequest,
            _ops: &mut pcb_heap::HeapOps<'_, '_>,
        ) -> Result<Addr, pcb_heap::PlacementError> {
            let a = Addr::new(self.0);
            self.0 += req.size.get();
            Ok(a)
        }
        fn note_free(&mut self, _: ObjectId, _: Addr, _: Size) {}
    }

    #[test]
    fn runs_all_steps_and_respects_live_bound() {
        let m = 1 << 10;
        let program = RobsonProgram::new(m, 4);
        let mut exec = Execution::new(Heap::non_moving(), program, Bump::default());
        let report = exec.run().expect("run succeeds");
        assert_eq!(report.rounds, 5, "fill + 4 steps");
        assert!(report.peak_live <= m);
        let (_, program, _) = exec.into_parts();
        assert_eq!(program.step_log().len(), 4);
        for s in program.step_log() {
            assert!(s.survivors > 0, "step {} kept survivors", s.step);
        }
    }

    #[test]
    fn survivor_counts_match_claim_4_9() {
        // Claim 4.9: after step i at least M·(i+2)/(2^{i+2}) objects are
        // f_i-occupying. (Survivors at the step's free phase are exactly
        // the f_i-occupying objects.)
        let m = 1u64 << 12;
        let program = RobsonProgram::new(m, 6);
        let mut exec = Execution::new(Heap::non_moving(), program, Bump(0));
        exec.run().unwrap();
        let (_, program, _) = exec.into_parts();
        for s in program.step_log() {
            let claim = (m as f64) * (s.step as f64 + 2.0) / (1u64 << (s.step + 2)) as f64;
            assert!(
                s.survivors as f64 >= claim.floor(),
                "step {}: {} survivors < {claim}",
                s.step,
                s.survivors
            );
        }
    }

    #[test]
    fn forces_large_heap_on_first_fit() {
        // Against first-fit, P_R must force at least... Robson's bound is
        // for the best possible allocator, so any allocator does at least
        // as badly. Use a small instance where the bound is meaningful.
        use pcb_alloc::{FitPolicy, FreeListManager};
        let m = 1u64 << 10;
        let log_n = 5u32;
        let program = RobsonProgram::new(m, log_n);
        let mut exec = Execution::new(
            Heap::non_moving(),
            program,
            FreeListManager::new(FitPolicy::FirstFit),
        );
        let report = exec.run().unwrap();
        let bound = RobsonProgram::robson_lower_bound(m, log_n);
        assert!(
            report.heap_size as f64 >= bound,
            "HS {} < Robson bound {bound}",
            report.heap_size
        );
    }

    #[test]
    #[should_panic(expected = "M must be at least n")]
    fn tiny_m_is_rejected() {
        let _ = RobsonProgram::new(4, 4);
    }
}
