//! Object↔chunk association (Section 4 of the paper) and the potential
//! function `u(t)` it induces.
//!
//! During stage II of `P_F`, the heap is partitioned into aligned chunks of
//! `2^i` words. The program associates with each chunk a set `O_D` of
//! objects (or *halves* of objects — Figure 4's refinement), maintaining
//! the invariant that a used chunk keeps density at least `2^-ρ` so that
//! evacuating it is never profitable for a c-partial manager. This module
//! owns that bookkeeping:
//!
//! * association survives compaction — a moved (and therefore immediately
//!   freed) object stays in `O_D` as a *dead* entry until the chunk is
//!   reused by a fresh allocation;
//! * the middle chunk of each freshly placed object is tracked in the set
//!   `E` (Definition 4.12);
//! * the chunk potential `u_D` (Definition 4.3) and the total `u(t) =
//!   Σ u_D − n/4` (Definition 4.4) are maintained incrementally.

use std::collections::{BTreeMap, HashMap};

use pcb_heap::ObjectId;

/// One element of an `O_D` set: a whole object or one of its halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The associated object.
    pub id: ObjectId,
    /// Words this entry contributes to the chunk (the object's size, or
    /// half of it for a half-entry).
    pub words: u64,
    /// Whether the object is still live (dead entries are left behind by
    /// compacted-then-freed objects).
    pub live: bool,
    /// Whether this is one half of an object split across two chunks.
    pub half: bool,
}

#[derive(Debug, Clone, Default)]
struct Chunk {
    entries: Vec<Entry>,
    /// Sum of `words` over entries (maintained, not recomputed).
    sum: u64,
    /// Membership in the set `E` of middle chunks (Definition 4.12).
    in_e: bool,
}

/// The association state at one step, with `u(t)` maintained incrementally.
#[derive(Debug, Clone)]
pub struct Association {
    /// Current step `i`: chunks span `2^i` words.
    step: u32,
    /// Density exponent `ρ`: used chunks keep `sum ≥ 2^{step−ρ}` and the
    /// chunk potential saturates at density `2^-ρ`.
    rho: u32,
    chunks: BTreeMap<u64, Chunk>,
    /// Live-object backrefs: object -> chunk indices holding its entries.
    by_object: HashMap<ObjectId, Vec<u64>>,
    /// Σ u_D over all chunks, in words.
    u_sum: u128,
}

impl Association {
    /// Creates an empty association over chunks of `2^step` words.
    pub fn new(step: u32, rho: u32) -> Self {
        Association {
            step,
            rho,
            chunks: BTreeMap::new(),
            by_object: HashMap::new(),
            u_sum: 0,
        }
    }

    /// Current step (chunk order).
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Chunk size in words.
    pub fn chunk_words(&self) -> u64 {
        1 << self.step
    }

    /// `Σ_D u_D` in words (add `− n/4` for the paper's `u(t)`).
    pub fn u_sum(&self) -> u128 {
        self.u_sum
    }

    /// The paper's `u(t) = Σ u_D − n/4`, in words (may be negative early).
    pub fn potential(&self, log_n: u32) -> i128 {
        self.u_sum as i128 - (1i128 << log_n) / 4
    }

    /// Number of chunks with a non-empty association or in `E`.
    pub fn used_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk index holding `addr` at the current step.
    pub fn chunk_of(&self, addr: u64) -> u64 {
        addr >> self.step
    }

    /// Applies `f` to the chunk at `index`, keeping `u_sum` consistent.
    fn update<R>(&mut self, index: u64, f: impl FnOnce(&mut Chunk) -> R) -> R {
        let chunk = self.chunks.entry(index).or_default();
        let cap = 1u128 << self.step;
        let before = if chunk.in_e {
            cap
        } else {
            cap.min((chunk.sum as u128) << self.rho)
        };
        let r = f(chunk);
        let after = if chunk.in_e {
            cap
        } else {
            cap.min((chunk.sum as u128) << self.rho)
        };
        if chunk.entries.is_empty() && !chunk.in_e {
            self.chunks.remove(&index);
        }
        self.u_sum = self.u_sum - before + after;
        r
    }

    /// Associates a whole live object with the chunk at `index` (used by
    /// line 9 of Algorithm 1 for the f_ρ-occupying survivors of stage I).
    pub fn associate_whole(&mut self, index: u64, id: ObjectId, words: u64, live: bool) {
        self.update(index, |chunk| {
            chunk.entries.push(Entry {
                id,
                words,
                live,
                half: false,
            });
            chunk.sum += words;
        });
        if live {
            self.by_object.entry(id).or_default().push(index);
        }
    }

    /// Doubles the chunk size: each pair of adjacent chunks becomes one
    /// (line 12: `O_D = O_D1 ∪ O_D2`), and `E` membership lapses
    /// (Definition 4.12).
    pub fn advance_step(&mut self) {
        let old = std::mem::take(&mut self.chunks);
        self.step += 1;
        self.u_sum = 0;
        for (index, mut chunk) in old {
            let new_index = index / 2;
            chunk.in_e = false;
            let merged = self.chunks.entry(new_index).or_default();
            merged.sum += chunk.sum;
            merged.entries.append(&mut chunk.entries);
        }
        self.chunks.retain(|_, c| !c.entries.is_empty());
        // An object whose two halves sat in the two merging chunks is now
        // whole in one chunk: coalesce its half-entries so the shedding
        // logic never sees a half without a distinct partner.
        for chunk in self.chunks.values_mut() {
            let mut i = 0;
            while i < chunk.entries.len() {
                if chunk.entries[i].half {
                    if let Some(j) = (i + 1..chunk.entries.len())
                        .find(|&j| chunk.entries[j].id == chunk.entries[i].id)
                    {
                        let other = chunk.entries.swap_remove(j);
                        debug_assert!(other.half);
                        chunk.entries[i].words += other.words;
                        chunk.entries[i].half = false;
                    }
                }
                i += 1;
            }
        }
        let cap = 1u128 << self.step;
        self.u_sum = self
            .chunks
            .values()
            .map(|c| cap.min((c.sum as u128) << self.rho))
            .sum();
        for indices in self.by_object.values_mut() {
            for idx in indices.iter_mut() {
                *idx /= 2;
            }
            indices.dedup();
        }
    }

    /// Marks a (compacted-then-freed) object's entries dead; the entries
    /// and their contribution to chunk sums remain until the chunks are
    /// reused (the paper's "association is not removed when an object is
    /// compacted").
    pub fn mark_dead(&mut self, id: ObjectId) {
        let Some(indices) = self.by_object.remove(&id) else {
            return;
        };
        for index in indices {
            self.update(index, |chunk| {
                for e in chunk.entries.iter_mut().filter(|e| e.id == id) {
                    e.live = false;
                }
            });
        }
    }

    /// Whether the object currently has live entries.
    pub fn is_associated(&self, id: ObjectId) -> bool {
        self.by_object.contains_key(&id)
    }

    /// Line 13 of Algorithm 1: for every chunk, de-allocate as many
    /// associated objects as possible while keeping `sum ≥ 2^{step−ρ}`.
    /// Dropping a half re-assigns it to the partner chunk (which is then
    /// re-evaluated); dropping a whole de-allocates the object for real.
    ///
    /// Returns the objects to free, in a deterministic order.
    pub fn shed_density_surplus(&mut self) -> Vec<ObjectId> {
        let threshold = 1u64 << (self.step - self.rho);
        let mut freed = Vec::new();
        let mut worklist: Vec<u64> = self.chunks.keys().copied().collect();
        while let Some(index) = worklist.pop() {
            while let Some(chunk) = self.chunks.get(&index) {
                // Droppable: live entries whose removal keeps the chunk at
                // or above the density threshold. Prefer the largest.
                let candidate = chunk
                    .entries
                    .iter()
                    .filter(|e| e.live && chunk.sum - e.words >= threshold)
                    .max_by_key(|e| (e.words, !e.half, e.id))
                    .copied();
                let Some(entry) = candidate else { break };
                self.update(index, |chunk| {
                    let pos = chunk
                        .entries
                        .iter()
                        .position(|e| e.id == entry.id && e.half == entry.half)
                        .expect("candidate entry present");
                    chunk.entries.swap_remove(pos);
                    chunk.sum -= entry.words;
                });
                if entry.half {
                    // Re-assign the dropped half to the chunk holding the
                    // other half, then re-evaluate that chunk.
                    let partner = {
                        let indices = self
                            .by_object
                            .get_mut(&entry.id)
                            .expect("live half has backrefs");
                        let pos = indices
                            .iter()
                            .position(|&i| i == index)
                            .expect("backref to this chunk");
                        indices.swap_remove(pos);
                        indices[0]
                    };
                    self.update(partner, |chunk| {
                        let other = chunk
                            .entries
                            .iter_mut()
                            .find(|e| e.id == entry.id && e.live)
                            .expect("partner holds the other half");
                        debug_assert!(other.half);
                        other.half = false;
                        other.words += entry.words;
                        chunk.sum += entry.words;
                    });
                    worklist.push(partner);
                } else {
                    self.by_object.remove(&entry.id);
                    freed.push(entry.id);
                }
            }
        }
        freed.sort_unstable();
        freed
    }

    /// Line 14 of Algorithm 1, after placing object `o` (of size
    /// `4·2^step`) whose first three fully covered chunks are `d1..d3`:
    /// reset their associations to `O_D1 = {o'}`, `O_D2 = ∅` (recorded in
    /// `E`), `O_D3 = {o''}`.
    pub fn claim_new_object(&mut self, d1: u64, d2: u64, d3: u64, id: ObjectId, size: u64) {
        debug_assert!(d2 == d1 + 1 && d3 == d2 + 1, "chunks are consecutive");
        debug_assert_eq!(size, 4 << self.step, "stage-II objects span 4 chunks");
        for index in [d1, d2, d3] {
            let dropped = self.update(index, |chunk| {
                chunk.sum = 0;
                chunk.in_e = false;
                std::mem::take(&mut chunk.entries)
            });
            // Remove backrefs of discarded live entries (only dead entries
            // can be present on fully covered chunks, but stay defensive).
            for e in dropped.iter().filter(|e| e.live) {
                if let Some(indices) = self.by_object.get_mut(&e.id) {
                    indices.retain(|&i| i != index);
                    if indices.is_empty() {
                        self.by_object.remove(&e.id);
                    }
                }
            }
        }
        let half = size / 2;
        for index in [d1, d3] {
            self.update(index, |chunk| {
                chunk.entries.push(Entry {
                    id,
                    words: half,
                    live: true,
                    half: true,
                });
                chunk.sum += half;
            });
        }
        self.update(d2, |chunk| {
            chunk.in_e = true;
        });
        self.by_object.insert(id, vec![d1, d3]);
    }

    /// The no-halves variant of [`claim_new_object`](Self::claim_new_object)
    /// (Section 3.1's third improvement switched off): the whole object is
    /// associated with the first covered chunk, the other two stay
    /// unassociated, and `E` is not used.
    pub fn claim_whole_object(&mut self, d1: u64, d2: u64, d3: u64, id: ObjectId, size: u64) {
        debug_assert!(d2 == d1 + 1 && d3 == d2 + 1, "chunks are consecutive");
        for index in [d1, d2, d3] {
            let dropped = self.update(index, |chunk| {
                chunk.sum = 0;
                chunk.in_e = false;
                std::mem::take(&mut chunk.entries)
            });
            for e in dropped.iter().filter(|e| e.live) {
                if let Some(indices) = self.by_object.get_mut(&e.id) {
                    indices.retain(|&i| i != index);
                    if indices.is_empty() {
                        self.by_object.remove(&e.id);
                    }
                }
            }
        }
        self.update(d1, |chunk| {
            chunk.entries.push(Entry {
                id,
                words: size,
                live: true,
                half: false,
            });
            chunk.sum += size;
        });
        self.by_object.insert(id, vec![d1]);
    }

    /// Total words in live entries (the live space the association is
    /// holding hostage); used by tests for Proposition 4.17.
    pub fn live_associated_words(&self) -> u128 {
        self.chunks
            .values()
            .flat_map(|c| &c.entries)
            .filter(|e| e.live)
            .map(|e| e.words as u128)
            .sum()
    }

    /// Per-chunk view for invariant checks: `(index, sum, live_count,
    /// entry_count, in_e)`.
    pub fn chunk_stats(&self) -> Vec<(u64, u64, usize, usize, bool)> {
        self.chunks
            .iter()
            .map(|(&i, c)| {
                (
                    i,
                    c.sum,
                    c.entries.iter().filter(|e| e.live).count(),
                    c.entries.len(),
                    c.in_e,
                )
            })
            .collect()
    }

    /// Checks Claim 4.15-style structural invariants plus internal
    /// consistency; returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut halves: HashMap<ObjectId, u32> = HashMap::new();
        for (&index, chunk) in &self.chunks {
            let sum: u64 = chunk.entries.iter().map(|e| e.words).sum();
            if sum != chunk.sum {
                return Err(format!("chunk {index}: sum {} != {}", chunk.sum, sum));
            }
            if chunk.in_e && !chunk.entries.is_empty() {
                return Err(format!("chunk {index}: in E but has entries"));
            }
            for e in &chunk.entries {
                if e.words == 0 {
                    return Err(format!("chunk {index}: zero-word entry {}", e.id));
                }
                if e.live {
                    let backrefs = self
                        .by_object
                        .get(&e.id)
                        .ok_or_else(|| format!("live {} missing backrefs", e.id))?;
                    if !backrefs.contains(&index) {
                        return Err(format!("live {} lacks backref to {index}", e.id));
                    }
                    if e.half {
                        *halves.entry(e.id).or_default() += 1;
                    }
                }
            }
        }
        // Claim 4.15(2): a live object is whole in one chunk or split as
        // two halves over two chunks.
        for (id, indices) in &self.by_object {
            match indices.len() {
                1 => {}
                2 => {
                    if halves.get(id) != Some(&2) {
                        return Err(format!("{id} in two chunks but not as two halves"));
                    }
                    if indices[0] == indices[1] {
                        return Err(format!("{id} has duplicate chunk backrefs"));
                    }
                }
                k => return Err(format!("{id} associated with {k} chunks")),
            }
        }
        // u_sum agrees with a from-scratch computation.
        let cap = 1u128 << self.step;
        let fresh: u128 = self.chunks.values().map(|c| self.u_of_raw(c, cap)).sum();
        if fresh != self.u_sum {
            return Err(format!("u_sum {} != fresh {}", self.u_sum, fresh));
        }
        Ok(())
    }

    fn u_of_raw(&self, chunk: &Chunk, cap: u128) -> u128 {
        if chunk.in_e {
            cap
        } else {
            cap.min((chunk.sum as u128) << self.rho)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn figure_4_scenario() {
        // The paper's Figure 4: chunks of 8 words, density 1/4 (rho = 2).
        // Half of O2 on C7 and C8, O3 on C9, O1 also on C7. O1 can be
        // freed because C7 keeps density via O2's half.
        let mut a = Association::new(3, 2); // chunks of 8, threshold 2
        a.associate_whole(7, id(1), 2, true); // O1: 2 words on C7
        a.claim_new_object_for_test(7, id(2), 4); // O2 halves on C7, C8
        a.associate_whole(9, id(3), 2, true); // O3 on C9
        a.check_invariants().unwrap();
        let freed = a.shed_density_surplus();
        // C7 has sum 4 (O1=2 + half O2=2): dropping O1 leaves 2 >= 2. The
        // half of O2 cannot leave C7 (C7 would fall to 2-2=0 < 2 after?
        // dropping the half leaves O1's 2 words = threshold, so the half
        // *may* migrate to C8 first; either way O1 is ultimately freed and
        // every chunk keeps >= 2 words).
        assert!(freed.contains(&id(1)), "O1 freed: {freed:?}");
        assert!(!freed.contains(&id(3)), "O3 pins C9");
        a.check_invariants().unwrap();
        for (_, sum, _, entries, _) in a.chunk_stats() {
            if entries > 0 {
                assert!(sum >= 2);
            }
        }
    }

    impl Association {
        /// Test helper: place a half/half object on chunks (d, d+1) without
        /// the line-14 reset semantics.
        fn claim_new_object_for_test(&mut self, d: u64, id_: ObjectId, size: u64) {
            let half = size / 2;
            for (k, index) in [d, d + 1].into_iter().enumerate() {
                let _ = k;
                self.update(index, |chunk| {
                    chunk.entries.push(Entry {
                        id: id_,
                        words: half,
                        live: true,
                        half: true,
                    });
                    chunk.sum += half;
                });
            }
            self.by_object.insert(id_, vec![d, d + 1]);
        }
    }

    #[test]
    fn potential_saturates_at_chunk_size() {
        let mut a = Association::new(4, 2); // chunks of 16, u caps at 16
        a.associate_whole(0, id(1), 2, true);
        assert_eq!(a.u_sum(), 8, "2 words << rho=2 -> 8");
        a.associate_whole(0, id(2), 6, true);
        assert_eq!(a.u_sum(), 16, "saturated at 2^step");
        a.associate_whole(1, id(3), 1, true);
        assert_eq!(a.u_sum(), 20);
        assert_eq!(a.potential(6), 20 - 16);
        a.check_invariants().unwrap();
    }

    #[test]
    fn advance_step_merges_and_preserves_sums() {
        let mut a = Association::new(3, 1);
        a.associate_whole(4, id(1), 3, true);
        a.associate_whole(5, id(2), 5, true);
        a.associate_whole(7, id(3), 1, true);
        a.advance_step();
        a.check_invariants().unwrap();
        assert_eq!(a.step(), 4);
        let stats = a.chunk_stats();
        // Chunks 4,5 -> 2 (sum 8); chunk 7 -> 3 (sum 1).
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0], (2, 8, 2, 2, false));
        assert_eq!(stats[1], (3, 1, 1, 1, false));
        // u: min(2*8,16)=16, min(2*1,16)=2.
        assert_eq!(a.u_sum(), 18);
    }

    #[test]
    fn mark_dead_keeps_sum_and_entries() {
        let mut a = Association::new(3, 1);
        a.associate_whole(0, id(1), 4, true);
        let u_before = a.u_sum();
        a.mark_dead(id(1));
        assert_eq!(a.u_sum(), u_before, "death does not change u");
        assert!(!a.is_associated(id(1)));
        let freed = a.shed_density_surplus();
        assert!(freed.is_empty(), "dead entries are never shed");
        a.check_invariants().unwrap();
    }

    #[test]
    fn claim_new_object_resets_and_tracks_e() {
        let mut a = Association::new(3, 2);
        // Old dead residue on the chunks to be covered.
        a.associate_whole(10, id(1), 2, false);
        a.associate_whole(11, id(2), 2, false);
        let cap = 8u128;
        assert!(a.u_sum() > 0);
        a.claim_new_object(10, 11, 12, id(5), 32);
        a.check_invariants().unwrap();
        // D1 and D3 hold 16-word halves (saturated), D2 is in E.
        assert_eq!(a.u_sum(), 3 * cap);
        let stats = a.chunk_stats();
        assert_eq!(stats.len(), 3);
        assert!(stats[1].4, "middle chunk in E");
        assert_eq!(stats[1].3, 0, "middle chunk has no entries");
        // After a step change E lapses and the halves merge into chunk 5.
        a.advance_step();
        a.check_invariants().unwrap();
        let stats = a.chunk_stats();
        assert_eq!(stats.len(), 2, "{stats:?}");
        assert!(stats.iter().all(|s| !s.4), "E cleared on step change");
    }

    #[test]
    fn shed_respects_threshold_exactly() {
        let mut a = Association::new(4, 2); // threshold 4
        a.associate_whole(0, id(1), 4, true);
        a.associate_whole(0, id(2), 4, true);
        let freed = a.shed_density_surplus();
        assert_eq!(freed.len(), 1, "exactly one of the two 4-word objects");
        let stats = a.chunk_stats();
        assert_eq!(stats[0].1, 4, "threshold retained");
        // A chunk below threshold sheds nothing.
        let mut b = Association::new(4, 2);
        b.associate_whole(0, id(3), 2, true);
        assert!(b.shed_density_surplus().is_empty());
    }

    #[test]
    fn half_reassignment_cascades() {
        // Chunks of 8, rho 1 (threshold 4). Object A halves on chunks 0,1
        // (4+4); whole B=4 on chunk 0; whole C=4 on chunk 1.
        let mut a = Association::new(3, 1);
        a.associate_whole(0, id(10), 4, true);
        a.associate_whole(1, id(11), 4, true);
        a.claim_new_object_for_test(0, id(12), 8);
        a.check_invariants().unwrap();
        let freed = a.shed_density_surplus();
        a.check_invariants().unwrap();
        // Enough mass exists to free both whole objects: each chunk ends
        // holding exactly one half... or the halves migrate to one chunk.
        // Whatever the cascade order, every chunk with entries keeps >= 4
        // and at least one whole object is freed.
        assert!(!freed.is_empty());
        for (_, sum, _, entries, _) in a.chunk_stats() {
            if entries > 0 {
                assert!(sum >= 4, "density threshold violated");
            }
        }
        // Total live words retained across chunks is at least threshold
        // per non-empty chunk.
        assert!(a.live_associated_words() >= 4);
    }
}
