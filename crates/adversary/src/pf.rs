//! The paper's bad program `P_F` (Algorithm 1).
//!
//! `P_F` forces every c-partial memory manager into a heap of at least
//! `M · h` words (Theorem 1). It runs in two stages over steps
//! `i = 0, 1, …, log₂(n) − 2`:
//!
//! * **Stage I** (steps `0..=ρ`): Robson's bad program, adapted to survive
//!   compaction through *ghost objects* — whenever the manager moves an
//!   object, `P_F` frees it immediately but keeps a ghost at its original
//!   address so the offset-selection and de-allocation decisions of
//!   Robson's algorithm are unchanged (Definition 4.1, Claim 4.8).
//!   Steps `ρ+1 .. 2ρ−1` are null steps that only let the chunk size grow.
//! * **Stage II** (steps `2ρ ..= log₂(n) − 2`): chunk sizes double each
//!   step; each chunk keeps a set of associated objects with density at
//!   least `2^-ρ` (so evacuating it never pays for the manager), surplus
//!   objects are freed (line 13), and `⌊x·M·2^{−i−2}⌋` objects of size
//!   `2^{i+2}` are allocated (line 14), each claiming three empty chunks.
//!
//! The three improvements over POPL'11 that Section 3.1 describes are
//! individually switchable through [`PfVariant`], giving the ablation
//! baseline (all off) used by experiment E7.

use pcb_heap::{Addr, MoveResponse, ObjectId, Program, Size};

use crate::association::Association;
use crate::math;
use crate::occupancy::{first_occupying_word, is_f_occupying, OffsetTracker};

/// Which of Section 3.1's improvements are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfVariant {
    /// Improvement 1: run Robson's program (with offset optimization) as
    /// stage I. When off, stage I degenerates to the initial fill with no
    /// offset selection (`f` stays 0) — the paper's first improvement.
    pub robson_stage1: bool,
    /// Improvement 2: allocate the regimented `x·M` words per stage-II
    /// step instead of greedily allocating as much as fits.
    pub regimented_alloc: bool,
    /// Improvement 3: split each new object's association into two halves
    /// on its first and third covered chunks. When off, the whole object
    /// is associated with the first chunk only.
    pub half_assignment: bool,
}

impl PfVariant {
    /// The full program of the paper.
    pub const FULL: PfVariant = PfVariant {
        robson_stage1: true,
        regimented_alloc: true,
        half_assignment: true,
    };

    /// The POPL'11-style baseline: all three improvements off.
    pub const BASELINE: PfVariant = PfVariant {
        robson_stage1: false,
        regimented_alloc: false,
        half_assignment: false,
    };
}

impl Default for PfVariant {
    fn default() -> Self {
        PfVariant::FULL
    }
}

/// Parameters of a `P_F` run.
#[derive(Debug, Clone, Copy)]
pub struct PfConfig {
    /// Live-space bound `M` in words.
    pub m: u64,
    /// `log₂` of the largest object size `n`.
    pub log_n: u32,
    /// Compaction bound `c`.
    pub c: u64,
    /// Density exponent `ρ` (chunk density threshold `2^-ρ`).
    pub rho: u32,
    /// Target waste factor `h` (drives `x = (1 − 2^{−ρ}h)/(ρ+1)`).
    pub h: f64,
    /// Which improvements to enable.
    pub variant: PfVariant,
    /// Record analysis invariants (Claim 4.16) during the run.
    pub validate: bool,
}

impl PfConfig {
    /// The canonical configuration: optimal `ρ` and the Theorem 1 `h` for
    /// `(m, n, c)`, all improvements on.
    ///
    /// # Errors
    ///
    /// Returns a message when no feasible `ρ` exists (e.g. `n` too small
    /// or `c < 3`).
    pub fn new(m: u64, log_n: u32, c: u64) -> Result<Self, String> {
        let (rho, h) = math::optimal_rho_memo(m, log_n, c)
            .ok_or_else(|| format!("no feasible rho for M={m}, log n={log_n}, c={c}"))?;
        Ok(PfConfig {
            m,
            log_n,
            c,
            rho,
            h,
            variant: PfVariant::FULL,
            validate: false,
        })
    }

    /// Overrides the density exponent (recomputing `h`); useful for
    /// sweeping `ρ` in experiments.
    ///
    /// # Errors
    ///
    /// Returns a message when `rho` is infeasible for the parameters.
    pub fn with_rho(mut self, rho: u32) -> Result<Self, String> {
        let h = math::waste_factor(self.m, self.log_n, self.c, rho)
            .ok_or_else(|| format!("rho={rho} infeasible"))?;
        self.rho = rho;
        self.h = h;
        Ok(self)
    }

    /// Selects a variant; returns `self` for chaining.
    pub fn with_variant(mut self, variant: PfVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Enables invariant recording; returns `self` for chaining.
    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    /// The stage-II allocation fraction `x`.
    pub fn x(&self) -> f64 {
        math::stage2_alloc_fraction(self.h, self.rho)
    }

    /// The last step index, `log₂(n) − 2`.
    pub fn last_step(&self) -> u32 {
        self.log_n - 2
    }
}

#[derive(Debug, Clone, Copy)]
struct LiveObj {
    addr: Addr,
    size: Size,
}

/// Id-indexed object table. Engine ids are small sequential integers, so
/// a slot vector beats hashing on every placement/free, and iteration
/// comes out in id order — which is the order every consumer sorts into
/// anyway.
#[derive(Debug, Default)]
struct IdMap {
    slots: Vec<Option<LiveObj>>,
}

impl IdMap {
    fn insert(&mut self, id: ObjectId, obj: LiveObj) {
        let i = id.get() as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(obj);
    }

    fn remove(&mut self, id: ObjectId) -> Option<LiveObj> {
        self.slots.get_mut(id.get() as usize)?.take()
    }

    fn clear(&mut self) {
        self.slots.clear();
    }

    /// Live entries in ascending id order.
    fn iter(&self) -> impl Iterator<Item = (ObjectId, LiveObj)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|o| (ObjectId::from_raw(i as u64), o)))
    }

    fn values(&self) -> impl Iterator<Item = LiveObj> + '_ {
        self.slots.iter().filter_map(|o| *o)
    }
}

/// Execution phases of `P_F`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Step 0: fill with `M` unit objects.
    Fill,
    /// Steps `1..=ρ`: Robson adaptation.
    Robson(u32),
    /// Steps `ρ+1 ..= 2ρ−1`: null steps.
    Null(u32),
    /// Steps `2ρ ..= log n − 2`.
    Stage2(u32),
    /// Execution complete.
    Done,
}

/// The bad program `P_F` of Algorithm 1.
///
/// Drive it with [`pcb_heap::Execution`] against any
/// [`pcb_heap::MemoryManager`]; the measured heap size divided by `M`
/// approaches (and for c-partial managers can never beat) the waste factor
/// `h` of Theorem 1.
#[derive(Debug)]
pub struct PfProgram {
    cfg: PfConfig,
    round: u32,
    f: u64,
    live: IdMap,
    live_words: u64,
    /// Stage-I ghosts at their original (birth) address.
    ghosts: IdMap,
    ghost_words: u64,
    /// Incrementally maintained candidate scores over live ∪ ghosts for
    /// the next Robson offset choice. Stage-I moves are score-neutral (the
    /// ghost inherits the birth address and size), so only placements and
    /// step transitions touch it.
    tracker: OffsetTracker,
    assoc: Option<Association>,
    /// Words allocated in each stage (the analysis' `s₁`, `s₂`).
    s1_words: u64,
    s2_words: u64,
    /// Words compacted in each stage (the analysis' `q₁`, `q₂`).
    q1_words: u64,
    q2_words: u64,
    violations: Vec<String>,
}

impl PfProgram {
    /// Creates the program for a configuration.
    pub fn new(cfg: PfConfig) -> Self {
        PfProgram {
            cfg,
            round: 0,
            f: 0,
            live: IdMap::default(),
            live_words: 0,
            ghosts: IdMap::default(),
            ghost_words: 0,
            tracker: OffsetTracker::new(),
            assoc: None,
            s1_words: 0,
            s2_words: 0,
            q1_words: 0,
            q2_words: 0,
            violations: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PfConfig {
        &self.cfg
    }

    fn phase(&self) -> Phase {
        let rho = self.cfg.rho;
        let last = self.cfg.last_step();
        match self.round {
            0 => Phase::Fill,
            r if r <= rho => Phase::Robson(r),
            r if r < 2 * rho => Phase::Null(r),
            r if r <= last => Phase::Stage2(r),
            _ => Phase::Done,
        }
    }

    /// Words compacted during stage I (the analysis' `q₁`).
    pub fn q1_words(&self) -> u64 {
        self.q1_words
    }

    /// Words compacted during stage II (`q₂`).
    pub fn q2_words(&self) -> u64 {
        self.q2_words
    }

    /// Words allocated during stage I (`s₁`).
    pub fn s1_words(&self) -> u64 {
        self.s1_words
    }

    /// Words allocated during stage II (`s₂`).
    pub fn s2_words(&self) -> u64 {
        self.s2_words
    }

    /// The association state (present once stage II has started).
    pub fn association(&self) -> Option<&Association> {
        self.assoc.as_ref()
    }

    /// The potential `u(t) = Σ u_D − n/4` in words, if stage II started.
    pub fn potential(&self) -> Option<i128> {
        self.assoc.as_ref().map(|a| a.potential(self.cfg.log_n))
    }

    /// Claim 4.16 violations recorded so far (empty unless
    /// [`PfConfig::validate`] is set — and, if the paper and this
    /// implementation are right, empty regardless).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Builds the line-9 association: each `f_ρ`-occupying live or ghost
    /// object is associated with the `2^{2ρ−1}`-chunk containing its
    /// occupying word.
    fn init_association(&mut self) {
        let step = 2 * self.cfg.rho - 1;
        let mut assoc = Association::new(step, self.cfg.rho);
        let chunk_words = 1u64 << step;
        let mut items: Vec<(ObjectId, LiveObj, bool)> = self
            .live
            .iter()
            .map(|(id, o)| (id, o, true))
            .chain(self.ghosts.iter().map(|(id, o)| (id, o, false)))
            .collect();
        items.sort_by_key(|&(id, _, _)| id);
        for (id, obj, live) in items {
            if let Some(word) = first_occupying_word(obj.addr, obj.size, self.f, self.cfg.rho) {
                // The occupying word is defined w.r.t. step-ρ chunks; the
                // association chunk (size 2^{2ρ−1}) is the one containing
                // that word.
                let index = word.get() / chunk_words;
                assoc.associate_whole(index, id, obj.size.get(), live);
            }
        }
        self.ghosts.clear();
        self.ghost_words = 0;
        self.assoc = Some(assoc);
    }

    fn validate_u_monotone(&mut self, before: i128, what: &str) {
        if !self.cfg.validate {
            return;
        }
        let after = self.potential().expect("association exists");
        if after < before {
            self.violations
                .push(format!("u decreased on {what}: {before} -> {after}"));
        }
    }
}

impl Program for PfProgram {
    fn name(&self) -> &str {
        if self.cfg.variant == PfVariant::FULL {
            "pf"
        } else if self.cfg.variant == PfVariant::BASELINE {
            "pf-baseline"
        } else {
            "pf-variant"
        }
    }

    fn live_bound(&self) -> Size {
        Size::new(self.cfg.m)
    }

    fn frees(&mut self) -> Vec<ObjectId> {
        match self.phase() {
            Phase::Fill | Phase::Null(_) | Phase::Done => Vec::new(),
            Phase::Robson(i) => {
                // Line 5: pick f_i; line 6: free the non-f_i-occupying.
                debug_assert_eq!(self.tracker.step(), i);
                if self.cfg.variant.robson_stage1 {
                    self.f = self.tracker.choose();
                }
                let f = self.f;
                // IdMap iteration is already in ascending id order.
                let freed: Vec<ObjectId> = self
                    .live
                    .iter()
                    .filter(|&(_, o)| !is_f_occupying(o.addr, o.size, f, i))
                    .map(|(id, _)| id)
                    .collect();
                for &id in &freed {
                    let o = self.live.remove(id).expect("selected from live");
                    self.live_words -= o.size.get();
                }
                // Ghosts vanish silently (they are already de-allocated).
                let ghost_gone: Vec<ObjectId> = self
                    .ghosts
                    .iter()
                    .filter(|&(_, o)| !is_f_occupying(o.addr, o.size, f, i))
                    .map(|(id, _)| id)
                    .collect();
                for id in ghost_gone {
                    let o = self.ghosts.remove(id).expect("selected from ghosts");
                    self.ghost_words -= o.size.get();
                }
                // Seed the step-(i+1) candidate scores from the surviving
                // live-or-ghost inventory; round-`i` allocations accumulate
                // via `placed`.
                self.tracker.advance(f, i + 1);
                for o in self.live.values().chain(self.ghosts.values()) {
                    self.tracker.add(o.addr, o.size);
                }
                freed
            }
            Phase::Stage2(i) => {
                // First stage-II step: build the line-9 association, then
                // advance into the step-i partition.
                if self.assoc.is_none() {
                    self.init_association();
                }
                let before = self.potential().expect("association just built");
                self.assoc.as_mut().expect("built above").advance_step();
                debug_assert_eq!(self.assoc.as_ref().unwrap().step(), i);
                self.validate_u_monotone(before, "step change");
                // Line 13: shed surplus while keeping chunk density 2^-ρ.
                let before = self.potential().expect("association exists");
                let freed = self
                    .assoc
                    .as_mut()
                    .expect("association exists")
                    .shed_density_surplus();
                self.validate_u_monotone(before, "density shedding");
                if self.cfg.validate {
                    if let Err(e) = self.assoc.as_ref().unwrap().check_invariants() {
                        self.violations.push(format!("step {i}: {e}"));
                    }
                }
                for &id in &freed {
                    let o = self.live.remove(id).expect("shed objects are live");
                    self.live_words -= o.size.get();
                }
                freed
            }
        }
    }

    fn allocs(&mut self) -> Vec<Size> {
        match self.phase() {
            Phase::Fill => vec![Size::WORD; self.cfg.m as usize],
            Phase::Robson(i) => {
                // Line 7: fill the remaining budget with 2^i-word objects;
                // ghosts count against M (the analysis treats them as live).
                let size = 1u64 << i;
                let budget = self
                    .cfg
                    .m
                    .saturating_sub(self.live_words + self.ghost_words);
                vec![Size::new(size); (budget / size) as usize]
            }
            Phase::Null(_) | Phase::Done => Vec::new(),
            Phase::Stage2(i) => {
                // Line 14: x·M words per step (regimented), capped by M.
                let size = 1u64 << (i + 2);
                let budget = self.cfg.m.saturating_sub(self.live_words) / size;
                let count = if self.cfg.variant.regimented_alloc {
                    let regimented = (self.cfg.x() * self.cfg.m as f64 / size as f64) as u64;
                    regimented.min(budget)
                } else {
                    budget
                };
                vec![Size::new(size); count as usize]
            }
        }
    }

    fn placed(&mut self, id: ObjectId, addr: Addr, size: Size) {
        self.live.insert(id, LiveObj { addr, size });
        self.live_words += size.get();
        match self.phase() {
            Phase::Stage2(i) => {
                self.s2_words += size.get();
                let assoc = self.assoc.as_mut().expect("stage II has an association");
                // The first three chunks fully covered by the object.
                let chunk = 1u64 << i;
                let d1 = addr.get().div_ceil(chunk);
                debug_assert!((d1 + 3) * chunk <= addr.get() + size.get());
                let (u_before, q) = if self.cfg.validate {
                    let q: u64 = assoc
                        .chunk_stats()
                        .iter()
                        .filter(|&&(idx, ..)| idx >= d1 && idx < d1 + 3)
                        .map(|&(_, sum, ..)| sum)
                        .sum();
                    (assoc.potential(self.cfg.log_n), q)
                } else {
                    (0, 0)
                };
                if self.cfg.variant.half_assignment {
                    assoc.claim_new_object(d1, d1 + 1, d1 + 2, id, size.get());
                } else {
                    assoc.claim_whole_object(d1, d1 + 1, d1 + 2, id, size.get());
                }
                if self.cfg.validate {
                    let u_after = self.assoc.as_ref().unwrap().potential(self.cfg.log_n);
                    // Claim 4.16(2): Δu ≥ ¾|o| − 2^ρ·q(o). Compare at 4×
                    // scale to stay in integers.
                    let lhs = 4 * (u_after - u_before);
                    let rhs = 3 * size.get() as i128 - 4 * ((q as i128) << self.cfg.rho);
                    if self.cfg.variant.half_assignment && lhs < rhs {
                        self.violations.push(format!(
                            "claim 4.16(2) violated at {id}: 4Δu = {lhs} < {rhs}"
                        ));
                    }
                }
            }
            Phase::Fill | Phase::Robson(_) => {
                self.s1_words += size.get();
                self.tracker.add(addr, size);
            }
            Phase::Null(_) | Phase::Done => {}
        }
    }

    fn moved(&mut self, id: ObjectId, _from: Addr, _to: Addr, size: Size) -> MoveResponse {
        // "If the memory manager compacts an object, ask [it] to
        // de-allocate this object immediately."
        let obj = self
            .live
            .remove(id)
            .expect("the manager can only move live objects");
        self.live_words -= size.get();
        match self.phase() {
            Phase::Stage2(_) => {
                self.q2_words += size.get();
                if let Some(assoc) = self.assoc.as_mut() {
                    assoc.mark_dead(id);
                }
            }
            _ => {
                // Stage I (including fill and null steps): keep a ghost at
                // the original allocation address (Definition 4.1).
                self.q1_words += size.get();
                self.ghosts.insert(
                    id,
                    LiveObj {
                        addr: obj.addr,
                        size: obj.size,
                    },
                );
                self.ghost_words += size.get();
            }
        }
        MoveResponse::FreeImmediately
    }

    fn round_done(&mut self) {
        self.round += 1;
    }

    fn finished(&self) -> bool {
        matches!(self.phase(), Phase::Done)
    }
}
